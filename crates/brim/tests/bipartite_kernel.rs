//! Equivalence of the bipartite BRIM's `O(m·n)` two-GEMV local-field
//! kernel with the dense `(m+n)²` coupling product it replaces, plus the
//! determinism contract of the parallel anneal ensemble.

use ember_brim::{BipartiteBrim, BrimConfig, BrimMachine, FlipSchedule};
use ember_ising::{generate, BipartiteProblem, RngStreams};
use ndarray::{Array1, Array2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(m: usize, n: usize, seed: u64) -> BipartiteProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = Array2::from_shape_fn((m, n), |_| rng.random_range(-1.0..1.0));
    let bv = Array1::from_shape_fn(m, |_| rng.random_range(-0.5..0.5));
    let bh = Array1::from_shape_fn(n, |_| rng.random_range(-0.5..0.5));
    BipartiteProblem::new(w, bv, bh).expect("consistent dims")
}

fn randomized_pair(problem: &BipartiteProblem, seed: u64) -> (BipartiteBrim, BipartiteBrim) {
    let fast = BipartiteBrim::new(problem.clone(), BrimConfig::default());
    let dense = BipartiteBrim::new(problem.clone(), BrimConfig::default()).with_dense_kernel(true);
    // Drive both to the same random voltage state through identical
    // flip-free steps from identical rngs.
    let mut fast = fast;
    let mut dense = dense;
    let mut r1 = StdRng::seed_from_u64(seed);
    let mut r2 = StdRng::seed_from_u64(seed);
    for _ in 0..3 {
        fast.step(0.3, &mut r1);
        dense.step(0.3, &mut r2);
    }
    (fast, dense)
}

#[test]
fn fast_local_field_matches_dense_product_to_1e12() {
    for (m, n, seed) in [(7, 5, 1), (16, 16, 2), (33, 9, 3), (12, 40, 4)] {
        let problem = random_problem(m, n, seed);
        let (fast, dense) = randomized_pair(&problem, seed);
        assert!(dense.uses_dense_kernel() && !fast.uses_dense_kernel());
        let lf = fast.local_field();
        let ld = dense.local_field();
        assert_eq!(lf.len(), m + n);
        for i in 0..(m + n) {
            assert!(
                (lf[i] - ld[i]).abs() < 1e-12,
                "{m}x{n} node {i}: fast {} vs dense {}",
                lf[i],
                ld[i]
            );
        }
    }
}

#[test]
fn fast_and_dense_trajectories_agree() {
    // Whole trajectories (including annealing flips from identical rngs)
    // stay within accumulated round-off of each other.
    let problem = random_problem(12, 8, 9);
    let mut fast = BipartiteBrim::new(problem.clone(), BrimConfig::default());
    let mut dense = BipartiteBrim::new(problem, BrimConfig::default()).with_dense_kernel(true);
    let mut r1 = StdRng::seed_from_u64(5);
    let mut r2 = StdRng::seed_from_u64(5);
    for step in 0..200 {
        fast.step(0.01, &mut r1);
        dense.step(0.01, &mut r2);
        for (a, b) in fast
            .visible_voltages()
            .iter()
            .zip(dense.visible_voltages().iter())
        {
            assert!((a - b).abs() < 1e-9, "visible diverged at step {step}");
        }
        for (a, b) in fast
            .hidden_voltages()
            .iter()
            .zip(dense.hidden_voltages().iter())
        {
            assert!((a - b).abs() < 1e-9, "hidden diverged at step {step}");
        }
    }
}

#[test]
fn clamped_settle_agrees_between_kernels() {
    let problem = random_problem(10, 6, 11);
    let levels: Vec<f64> = (0..10).map(|i| f64::from(i % 3 == 0)).collect();
    let mut fast = BipartiteBrim::new(problem.clone(), BrimConfig::default());
    let mut dense = BipartiteBrim::new(problem, BrimConfig::default()).with_dense_kernel(true);
    fast.clamp_visible(&levels);
    dense.clamp_visible(&levels);
    fast.settle(400);
    dense.settle(400);
    assert_eq!(fast.read_hidden_bits(), dense.read_hidden_bits());
    for (a, b) in fast
        .hidden_voltages()
        .iter()
        .zip(dense.hidden_voltages().iter())
    {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn reprogram_keeps_kernels_equivalent() {
    let first = random_problem(8, 4, 21);
    let second = random_problem(8, 4, 22);
    let mut fast = BipartiteBrim::new(first.clone(), BrimConfig::default());
    let mut dense = BipartiteBrim::new(first, BrimConfig::default()).with_dense_kernel(true);
    fast.reprogram(second.clone());
    dense.reprogram(second);
    let lf = fast.local_field();
    let ld = dense.local_field();
    for i in 0..lf.len() {
        assert!((lf[i] - ld[i]).abs() < 1e-12, "node {i} after reprogram");
    }
}

#[test]
fn anneal_ensemble_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(31);
    let problem = generate::random_gaussian(14, 1.0, 0.2, &mut rng);
    let schedule = FlipSchedule::geometric(0.08, 1e-3, 250);
    let streams = RngStreams::new(7);
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| {
                BrimMachine::anneal_ensemble(&problem, BrimConfig::default(), &schedule, 6, streams)
            })
    };
    let reference = run(1);
    for threads in [1, 2, 8] {
        let sol = run(threads);
        assert_eq!(
            sol.state, reference.state,
            "state differs at {threads} threads"
        );
        assert_eq!(sol.energy, reference.energy);
        assert_eq!(sol.phase_points, 6 * 250);
    }
}

#[test]
fn anneal_ensemble_beats_or_matches_single_restart() {
    let mut rng = StdRng::seed_from_u64(41);
    let problem = generate::random_gaussian(12, 1.0, 0.1, &mut rng);
    let schedule = FlipSchedule::geometric(0.08, 1e-3, 400);
    let streams = RngStreams::new(3);
    let single = {
        let mut machine = BrimMachine::new(problem.clone(), BrimConfig::default());
        let mut r = streams.rng(0);
        machine.randomize(&mut r);
        machine.anneal(&schedule, &mut r)
    };
    let ensemble =
        BrimMachine::anneal_ensemble(&problem, BrimConfig::default(), &schedule, 8, streams);
    assert!(
        ensemble.energy <= single.energy + 1e-12,
        "ensemble {} worse than single restart {}",
        ensemble.energy,
        single.energy
    );
}
