//! # ember-brim
//!
//! A dynamical simulator of the **B**istable **R**esistively-coupled **I**sing
//! **M**achine (BRIM) that the paper uses as its baseline substrate (§3.1,
//! Fig. 2; Afoakwa et al., HPCA'21).
//!
//! Each node is a capacitor voltage `Vᵢ ∈ [−1, 1]` made bistable by a
//! feedback circuit; a mesh of programmable resistors expresses the Ising
//! couplings. Treated as a dynamical system, the nodal voltages obey
//!
//! ```text
//! C · dVᵢ/dt = k_c · (Σⱼ Jᵢⱼ Vⱼ + hᵢ)  +  k_f · Vᵢ (1 − Vᵢ²)
//! ```
//!
//! — the first term is the resistive coupling current (the local field), the
//! second the bistable feedback that pins settled nodes at the rails. A
//! Lyapunov analysis shows local minima of the Ising energy are the stable
//! states ([`BrimMachine::lyapunov`] is non-increasing under noiseless
//! dynamics — property-tested). Annealing control injects random spin flips
//! with a decaying probability to escape local minima, analogous to
//! accepting uphill moves in simulated annealing.
//!
//! For RBMs the coupling network is folded into the bipartite layout of
//! Fig. 3 ([`BipartiteBrim`]), which supports clamping either side and needs
//! `m × n` instead of `(m+n)²` coupling units.
//!
//! # Example
//!
//! ```
//! use ember_brim::{BrimConfig, BrimMachine, FlipSchedule};
//! use ember_ising::generate;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let problem = generate::ferromagnetic_ring(8, 1.0);
//! let mut machine = BrimMachine::new(problem, BrimConfig::default());
//! let sol = machine.anneal(&FlipSchedule::geometric(0.05, 1e-4, 600), &mut rng);
//! // The ferromagnetic ring's ground energy is -8.
//! assert!(sol.energy <= -6.0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bipartite;
mod config;
mod machine;
mod schedule;

pub use bipartite::{BipartiteBrim, ClampMode};
pub use config::BrimConfig;
pub use machine::{BrimMachine, BrimSolution};
pub use schedule::FlipSchedule;
