use ndarray::{Array1, Array2};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ember_ising::{BipartiteProblem, IsingProblem};

use crate::{BrimConfig, FlipSchedule};

/// Which side of the bipartite machine is currently clamped by the clamp
/// units of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClampMode {
    /// Both sides evolve freely.
    Free,
    /// Visible nodes are driven by the clamp units; hidden nodes evolve.
    Visible,
    /// Hidden nodes are driven; visible nodes evolve.
    Hidden,
}

/// The bipartite BRIM of §3.1 / Fig. 3: visible nodes on one edge of the
/// coupling mesh, hidden nodes on the other, clamp units to drive either
/// side, and `m × n` coupling units.
///
/// Internally the RBM's bit-domain energy (Eq. 3) is embedded into the spin
/// domain once at programming time; dynamics then run on the joint
/// `m + n`-node Ising system with the clamped side held at its driven
/// voltages. Bits map to rails as `0 ↦ −1`, `1 ↦ +1`; multi-bit inputs (the
/// DTC-quantized gray levels) map linearly into `[−1, 1]`.
///
/// # Example
///
/// ```
/// use ember_brim::{BipartiteBrim, BrimConfig, ClampMode};
/// use ember_ising::BipartiteProblem;
/// use ndarray::{arr1, arr2};
///
/// # fn main() -> Result<(), ember_ising::IsingError> {
/// let p = BipartiteProblem::new(
///     arr2(&[[2.0], [2.0]]),   // both visible units excite the one hidden unit
///     arr1(&[0.0, 0.0]),
///     arr1(&[-1.0]),
/// )?;
/// let mut brim = BipartiteBrim::new(p, BrimConfig::default());
/// brim.clamp_visible(&[1.0, 1.0]);
/// brim.settle(400);
/// assert_eq!(brim.read_hidden_bits(), vec![true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BipartiteBrim {
    problem: BipartiteProblem,
    /// Spin-domain coupling scaled for the local-field kernel: `W / 4`.
    w_quarter: Array2<f64>,
    /// Spin-domain linear field of the embedded Ising system (visible
    /// entries first) — the `h` of [`BipartiteProblem::to_ising`],
    /// computed directly without materializing the dense `J`.
    field: Array1<f64>,
    /// Dense `(m+n)²` embedding, built only when the dense reference
    /// kernel is enabled.
    dense: Option<IsingProblem>,
    config: BrimConfig,
    voltages: Array1<f64>,
    clamp: ClampMode,
    phase_points: usize,
    /// Reusable local-field buffer: the integration loop calls the
    /// field kernel once per phase point, and a 120-step per-row
    /// power-cycle anneal would otherwise allocate 120 fresh vectors
    /// per served row.
    local_scratch: Array1<f64>,
}

/// The embedded spin-domain linear field of `problem`, visible entries
/// first (matches `BipartiteProblem::to_ising`, bitwise).
fn embedded_field(problem: &BipartiteProblem) -> Array1<f64> {
    let (m, n) = (problem.visible_len(), problem.hidden_len());
    let mut field = Array1::zeros(m + n);
    for i in 0..m {
        field[i] += problem.visible_bias()[i] / 2.0;
        for k in 0..n {
            field[i] += problem.weights()[[i, k]] / 4.0;
            field[m + k] += problem.weights()[[i, k]] / 4.0;
        }
    }
    for k in 0..n {
        field[m + k] += problem.hidden_bias()[k] / 2.0;
    }
    field
}

/// The deterministic power-on voltage pattern: a small alternating
/// perturbation that breaks the symmetry of the all-zero fixed point.
fn power_on_voltages(total: usize) -> Array1<f64> {
    Array1::from_shape_fn(total, |i| if i % 2 == 0 { 0.01 } else { -0.01 })
}

/// Thresholds a voltage rail into LSB-first packed words (`v ≥ 0 ↦ 1`).
fn pack_threshold(voltages: ndarray::ArrayView1<'_, f64>, words: &mut [u64]) {
    let needed = voltages.len().div_ceil(64);
    assert!(
        words.len() >= needed,
        "packed read needs {needed} words, got {}",
        words.len()
    );
    words[..needed].fill(0);
    for (i, &v) in voltages.iter().enumerate() {
        if v >= 0.0 {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
}

impl BipartiteBrim {
    /// Programs the bipartite problem onto the machine.
    pub fn new(problem: BipartiteProblem, config: BrimConfig) -> Self {
        let total = problem.visible_len() + problem.hidden_len();
        let voltages = power_on_voltages(total);
        let w_quarter = problem.weights().mapv(|w| w / 4.0);
        let field = embedded_field(&problem);
        BipartiteBrim {
            problem,
            w_quarter,
            field,
            dense: None,
            config,
            voltages,
            clamp: ClampMode::Free,
            phase_points: 0,
            local_scratch: Array1::zeros(total),
        }
    }

    /// Enables (or disables) the dense `(m+n)²` reference kernel: the
    /// local field is then computed through the full embedded coupling
    /// matrix instead of the two small GEMVs. Kept as the measured
    /// baseline of the `bench_pr1` harness and the kernel-equivalence
    /// tests — both kernels produce identical trajectories.
    #[must_use]
    pub fn with_dense_kernel(mut self, dense: bool) -> Self {
        self.dense = if dense {
            Some(self.problem.to_ising())
        } else {
            None
        };
        self
    }

    /// Whether the dense reference kernel is active.
    pub fn uses_dense_kernel(&self) -> bool {
        self.dense.is_some()
    }

    /// The local spin-domain field at every node: the bipartite fast
    /// path computes it as two small GEMVs over the `m × n` coupling
    /// block (`(W/4)·V_h` for the visible side, `(W/4)ᵀ·V_v` for the
    /// hidden side) plus the precomputed linear field — `O(m·n)` work —
    /// while the dense reference multiplies the full `(m+n)²` embedding.
    ///
    /// Entries belonging to a clamped side are never read by the
    /// dynamics; the fast path leaves them at zero, the dense reference
    /// still computes them.
    pub fn local_field(&self) -> Array1<f64> {
        let mut local = Array1::zeros(self.voltages.len());
        self.local_field_into(&mut local);
        local
    }

    /// [`BipartiteBrim::local_field`] into a caller-owned buffer: the
    /// per-step serial field kernel, running both GEMVs directly on the
    /// SIMD slice primitives ([`ndarray::simd`]) with no allocation —
    /// what a per-row power-cycle anneal (one fresh trajectory per
    /// served row, ~120 steps each) actually spends its time in.
    /// Arithmetic is identical to the allocating path step for step, so
    /// trajectories are bitwise unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not the node count.
    pub fn local_field_into(&self, out: &mut Array1<f64>) {
        assert_eq!(out.len(), self.voltages.len(), "local-field buffer size");
        if let Some(ising) = &self.dense {
            let dense = ising.couplings().dot(&self.voltages) + ising.field();
            out.as_mut_slice().copy_from_slice(dense.as_slice());
            return;
        }
        let m = self.problem.visible_len();
        let n = self.problem.hidden_len();
        let w = self.w_quarter.as_slice();
        let v = self.voltages.as_slice();
        let o = out.as_mut_slice();
        o.fill(0.0);
        // A clamped side's nodes are driven, so their local field is never
        // read — skip that GEMV entirely (the dense reference, like the
        // seed, always pays the full product).
        if self.clamp != ClampMode::Visible {
            let vh = &v[m..];
            for i in 0..m {
                o[i] = ndarray::simd::dot(&w[i * n..(i + 1) * n], vh) + self.field[i];
            }
        }
        if self.clamp != ClampMode::Hidden {
            let oh = &mut o[m..];
            // out[m + j] = Σ_i W/4[i, j]·v[i]: stream the physical rows
            // (the transposed-GEMV accumulation order, preserved).
            for (i, &vi) in v[..m].iter().enumerate() {
                if vi != 0.0 {
                    ndarray::simd::axpy(oh, vi, &w[i * n..(i + 1) * n]);
                }
            }
            for (j, x) in oh.iter_mut().enumerate() {
                *x += self.field[m + j];
            }
        }
    }

    /// The programmed bipartite problem.
    pub fn problem(&self) -> &BipartiteProblem {
        &self.problem
    }

    /// Re-programs the coupling weights/biases (used between learning steps
    /// by the Gibbs-sampler architecture, §3.2 step 2). Node voltages are
    /// preserved.
    pub fn reprogram(&mut self, problem: BipartiteProblem) {
        assert_eq!(
            problem.visible_len(),
            self.problem.visible_len(),
            "visible count cannot change"
        );
        assert_eq!(
            problem.hidden_len(),
            self.problem.hidden_len(),
            "hidden count cannot change"
        );
        self.w_quarter = problem.weights().mapv(|w| w / 4.0);
        self.field = embedded_field(&problem);
        if self.dense.is_some() {
            self.dense = Some(problem.to_ising());
        }
        self.problem = problem;
    }

    /// Current clamp mode.
    pub fn clamp_mode(&self) -> ClampMode {
        self.clamp
    }

    /// Total phase points traversed.
    pub fn phase_points(&self) -> usize {
        self.phase_points
    }

    /// Clamps the visible nodes to unit-interval levels (`0 ↦ −1 … 1 ↦ +1`).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len()` differs from the visible count or any level
    /// is outside `[0, 1]`.
    pub fn clamp_visible(&mut self, levels: &[f64]) {
        let m = self.problem.visible_len();
        assert_eq!(levels.len(), m, "visible clamp length mismatch");
        for (i, &x) in levels.iter().enumerate() {
            assert!((0.0..=1.0).contains(&x), "clamp level out of [0,1]");
            self.voltages[i] = 2.0 * x - 1.0;
        }
        self.clamp = ClampMode::Visible;
    }

    /// Clamps the hidden nodes to unit-interval levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len()` differs from the hidden count or any level
    /// is outside `[0, 1]`.
    pub fn clamp_hidden(&mut self, levels: &[f64]) {
        let m = self.problem.visible_len();
        let n = self.problem.hidden_len();
        assert_eq!(levels.len(), n, "hidden clamp length mismatch");
        for (j, &x) in levels.iter().enumerate() {
            assert!((0.0..=1.0).contains(&x), "clamp level out of [0,1]");
            self.voltages[m + j] = 2.0 * x - 1.0;
        }
        self.clamp = ClampMode::Hidden;
    }

    /// Loads hidden bits (e.g. a persistent particle) *without* clamping.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the hidden count.
    pub fn load_hidden_bits(&mut self, bits: &[bool]) {
        let m = self.problem.visible_len();
        assert_eq!(bits.len(), self.problem.hidden_len(), "hidden length");
        for (j, &b) in bits.iter().enumerate() {
            self.voltages[m + j] = if b { 1.0 } else { -1.0 };
        }
    }

    /// Releases all clamps: both sides evolve.
    pub fn release(&mut self) {
        self.clamp = ClampMode::Free;
    }

    /// Returns every node to the deterministic power-on voltage pattern
    /// of [`BipartiteBrim::new`] and releases all clamps — a reproducible
    /// "power cycle". The serving layer uses this to make each served
    /// chain an independent trajectory (one request's read-out must not
    /// depend on what the machine sampled for the previous tenant).
    /// Programmed couplings/biases and the phase-point count are
    /// untouched.
    pub fn reset_voltages(&mut self) {
        self.voltages = power_on_voltages(self.voltages.len());
        self.clamp = ClampMode::Free;
    }

    /// Visible-node voltages.
    pub fn visible_voltages(&self) -> ndarray::ArrayView1<'_, f64> {
        self.voltages
            .slice(ndarray::s![..self.problem.visible_len()])
    }

    /// Hidden-node voltages.
    pub fn hidden_voltages(&self) -> ndarray::ArrayView1<'_, f64> {
        self.voltages
            .slice(ndarray::s![self.problem.visible_len()..])
    }

    /// Thresholded visible bits.
    ///
    /// Allocates a fresh `Vec<bool>` per read; inside anneal/settle
    /// loops prefer [`BipartiteBrim::read_visible_bits_into`] (reused
    /// buffer) or [`BipartiteBrim::read_visible_packed`] (bit-packed,
    /// 64 nodes per word).
    pub fn read_visible_bits(&self) -> Vec<bool> {
        self.visible_voltages().iter().map(|&v| v >= 0.0).collect()
    }

    /// Thresholded hidden bits.
    ///
    /// Allocation caveats as for [`BipartiteBrim::read_visible_bits`].
    pub fn read_hidden_bits(&self) -> Vec<bool> {
        self.hidden_voltages().iter().map(|&v| v >= 0.0).collect()
    }

    /// Thresholded visible bits into a caller-owned buffer (cleared and
    /// refilled, so a loop reuses one allocation for every read).
    pub fn read_visible_bits_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend(self.visible_voltages().iter().map(|&v| v >= 0.0));
    }

    /// Thresholded hidden bits into a caller-owned buffer.
    pub fn read_hidden_bits_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend(self.hidden_voltages().iter().map(|&v| v >= 0.0));
    }

    /// Packed threshold read of the visible rail: bit `i` of the
    /// visible side lands in `words[i / 64]` at position `i % 64` (LSB
    /// first — the row layout of `ember_core::kernels::BitMatrix`, so a
    /// read can feed the bit-packed sampling kernels without ever
    /// materializing a `Vec<bool>`). Unused high bits of the last word
    /// are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `⌈m / 64⌉`.
    pub fn read_visible_packed(&self, words: &mut [u64]) {
        pack_threshold(self.visible_voltages(), words);
    }

    /// Packed threshold read of the hidden rail; layout as for
    /// [`BipartiteBrim::read_visible_packed`].
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `⌈n / 64⌉`.
    pub fn read_hidden_packed(&self, words: &mut [u64]) {
        pack_threshold(self.hidden_voltages(), words);
    }

    /// RBM energy (Eq. 3) of the thresholded state.
    pub fn energy_bits(&self) -> f64 {
        self.problem
            .energy_bits(&self.read_visible_bits(), &self.read_hidden_bits())
    }

    fn is_clamped(&self, index: usize) -> bool {
        let m = self.problem.visible_len();
        match self.clamp {
            ClampMode::Free => false,
            ClampMode::Visible => index < m,
            ClampMode::Hidden => index >= m,
        }
    }

    /// One integration step with flip probability `p` on the free nodes.
    pub fn step<R: Rng + ?Sized>(&mut self, p: f64, rng: &mut R) {
        let mut local = std::mem::replace(&mut self.local_scratch, Array1::from_vec(Vec::new()));
        self.local_field_into(&mut local);
        let kc = self.config.coupling_gain();
        let kf = self.config.feedback_gain();
        let dt = self.config.dt();
        for (i, v) in self.voltages.iter_mut().enumerate() {
            let m = self.problem.visible_len();
            let clamped = match self.clamp {
                ClampMode::Free => false,
                ClampMode::Visible => i < m,
                ClampMode::Hidden => i >= m,
            };
            if clamped {
                continue;
            }
            let feedback = kf * *v * (1.0 - *v * *v);
            *v = (*v + dt * (kc * local[i] + feedback)).clamp(-1.0, 1.0);
        }
        if p > 0.0 {
            for i in 0..self.voltages.len() {
                if !self.is_clamped(i) && rng.random::<f64>() < p {
                    self.voltages[i] = -self.voltages[i];
                }
            }
        }
        self.local_scratch = local;
        self.phase_points += 1;
    }

    /// Noiseless settle of the free side (§3.2 step 4 / §3.3 step 3: "wait
    /// for a predetermined time for the hidden units to settle").
    pub fn settle(&mut self, steps: usize) {
        struct NoRng;
        impl rand::RngCore for NoRng {
            fn next_u32(&mut self) -> u32 {
                unreachable!("settle must not consume randomness")
            }
            fn next_u64(&mut self) -> u64 {
                unreachable!("settle must not consume randomness")
            }
            fn fill_bytes(&mut self, _dest: &mut [u8]) {
                unreachable!("settle must not consume randomness")
            }
        }
        let mut rng = NoRng;
        for _ in 0..steps {
            self.step(0.0, &mut rng);
        }
    }

    /// Annealed free-run under a flip schedule (§3.3 step 4: "load one of
    /// `p` particles and start annealing process").
    pub fn anneal<R: Rng + ?Sized>(&mut self, schedule: &FlipSchedule, rng: &mut R) {
        for k in 0..schedule.steps() {
            self.step(schedule.probability(k), rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::{arr1, arr2, Array2};
    use rand::SeedableRng;

    fn and_gate_problem() -> BipartiteProblem {
        // One hidden unit that activates only when both visible are on.
        BipartiteProblem::new(arr2(&[[2.0], [2.0]]), arr1(&[0.0, 0.0]), arr1(&[-3.0])).unwrap()
    }

    #[test]
    fn clamped_visible_drives_hidden_like_and() {
        for (v0, v1, expect) in [
            (0.0, 0.0, false),
            (1.0, 0.0, false),
            (0.0, 1.0, false),
            (1.0, 1.0, true),
        ] {
            let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
            brim.clamp_visible(&[v0, v1]);
            brim.settle(500);
            assert_eq!(brim.read_hidden_bits(), vec![expect], "inputs ({v0}, {v1})");
            // Clamped side must be untouched.
            assert_eq!(brim.read_visible_bits(), vec![v0 > 0.5, v1 > 0.5]);
        }
    }

    #[test]
    fn clamped_hidden_drives_visible() {
        // Strong positive weights and biases that keep visibles off unless
        // the hidden unit pushes them on.
        let p = BipartiteProblem::new(arr2(&[[3.0], [3.0]]), arr1(&[-1.0, -1.0]), arr1(&[0.0]))
            .unwrap();
        let mut brim = BipartiteBrim::new(p, BrimConfig::default());
        brim.clamp_hidden(&[1.0]);
        brim.settle(500);
        assert_eq!(brim.read_visible_bits(), vec![true, true]);

        let p2 = BipartiteProblem::new(arr2(&[[3.0], [3.0]]), arr1(&[-1.0, -1.0]), arr1(&[0.0]))
            .unwrap();
        let mut brim = BipartiteBrim::new(p2, BrimConfig::default());
        brim.clamp_hidden(&[0.0]);
        brim.settle(500);
        assert_eq!(brim.read_visible_bits(), vec![false, false]);
    }

    #[test]
    fn free_run_lowers_rbm_energy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        use rand::Rng;
        let w = Array2::from_shape_fn((6, 4), |_| rng.random_range(-1.0..1.0));
        let p = BipartiteProblem::new(w, Array1::zeros(6), Array1::zeros(4)).unwrap();
        let mut brim = BipartiteBrim::new(p, BrimConfig::default());
        let before = brim.energy_bits();
        brim.release();
        brim.settle(800);
        assert!(brim.energy_bits() <= before);
    }

    #[test]
    fn reprogram_changes_behavior() {
        let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        // Flip the hidden bias so the unit turns on unconditionally.
        let or_like =
            BipartiteProblem::new(arr2(&[[2.0], [2.0]]), arr1(&[0.0, 0.0]), arr1(&[3.0])).unwrap();
        brim.reprogram(or_like);
        brim.clamp_visible(&[0.0, 0.0]);
        brim.settle(500);
        assert_eq!(brim.read_hidden_bits(), vec![true]);
    }

    #[test]
    #[should_panic(expected = "visible count")]
    fn reprogram_rejects_resize() {
        let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        let bigger =
            BipartiteProblem::new(Array2::zeros((3, 1)), Array1::zeros(3), Array1::zeros(1))
                .unwrap();
        brim.reprogram(bigger);
    }

    #[test]
    fn reset_voltages_is_a_reproducible_power_cycle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        let fresh = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        brim.clamp_visible(&[1.0, 1.0]);
        brim.anneal(&FlipSchedule::constant(0.2, 40), &mut rng);
        assert_ne!(brim.hidden_voltages(), fresh.hidden_voltages());
        let points = brim.phase_points();
        brim.reset_voltages();
        assert_eq!(brim.visible_voltages(), fresh.visible_voltages());
        assert_eq!(brim.hidden_voltages(), fresh.hidden_voltages());
        assert_eq!(brim.clamp_mode(), ClampMode::Free);
        // Programmed problem and accounting survive the power cycle.
        assert_eq!(brim.phase_points(), points);
        brim.clamp_visible(&[1.0, 1.0]);
        brim.settle(500);
        assert_eq!(brim.read_hidden_bits(), vec![true]);
    }

    #[test]
    fn buffered_and_packed_reads_match_allocating_reads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::Rng;
        // 70 visible nodes so the packed read crosses a word boundary.
        let w = Array2::from_shape_fn((70, 3), |_| rng.random_range(-1.0..1.0));
        let p = BipartiteProblem::new(w, Array1::zeros(70), Array1::zeros(3)).unwrap();
        let mut brim = BipartiteBrim::new(p, BrimConfig::default());
        brim.release();
        brim.anneal(&FlipSchedule::constant(0.1, 30), &mut rng);
        let (mut vbuf, mut hbuf) = (Vec::new(), Vec::new());
        brim.read_visible_bits_into(&mut vbuf);
        brim.read_hidden_bits_into(&mut hbuf);
        assert_eq!(vbuf, brim.read_visible_bits());
        assert_eq!(hbuf, brim.read_hidden_bits());
        let mut vwords = [u64::MAX; 2];
        let mut hwords = [u64::MAX; 1];
        brim.read_visible_packed(&mut vwords);
        brim.read_hidden_packed(&mut hwords);
        for (i, &bit) in vbuf.iter().enumerate() {
            assert_eq!((vwords[i / 64] >> (i % 64)) & 1 == 1, bit, "visible {i}");
        }
        // Padding bits above node 69 must be cleared.
        assert_eq!(vwords[1] >> 6, 0);
        for (j, &bit) in hbuf.iter().enumerate() {
            assert_eq!((hwords[0] >> j) & 1 == 1, bit, "hidden {j}");
        }
        assert_eq!(hwords[0] >> 3, 0);
    }

    #[test]
    #[should_panic(expected = "packed read needs")]
    fn packed_read_rejects_short_word_slice() {
        let brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        let mut words: [u64; 0] = [];
        brim.read_visible_packed(&mut words);
    }

    #[test]
    fn load_hidden_bits_sets_rails() {
        let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        brim.load_hidden_bits(&[true]);
        assert_eq!(brim.hidden_voltages()[0], 1.0);
        brim.load_hidden_bits(&[false]);
        assert_eq!(brim.hidden_voltages()[0], -1.0);
    }

    #[test]
    fn anneal_respects_clamp() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        brim.clamp_visible(&[1.0, 0.0]);
        brim.anneal(&FlipSchedule::constant(0.5, 50), &mut rng);
        // Clamped visible rails unchanged even under heavy flip injection.
        assert_eq!(brim.read_visible_bits(), vec![true, false]);
    }

    #[test]
    fn multibit_clamp_levels_map_linearly() {
        let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        brim.clamp_visible(&[0.25, 0.75]);
        assert!((brim.visible_voltages()[0] - (-0.5)).abs() < 1e-12);
        assert!((brim.visible_voltages()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase_points_count_settle_and_anneal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut brim = BipartiteBrim::new(and_gate_problem(), BrimConfig::default());
        brim.settle(10);
        brim.anneal(&FlipSchedule::constant(0.1, 5), &mut rng);
        assert_eq!(brim.phase_points(), 15);
    }
}
