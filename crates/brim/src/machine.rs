//! The all-to-all BRIM machine and its anneal ensembles.
//!
//! # Parallel restarts and the RNG-stream contract
//!
//! Like the physical machine, single anneals land in local minima; the
//! standard remedy is a best-of-`R` restart ensemble.
//! [`BrimMachine::anneal_ensemble`] runs the `R` restarts across the
//! rayon pool: restart `r` draws all of its randomness from
//! [`RngStreams::rng`]`(r)` — an independent substream split from the
//! caller's master seed — and the winner is selected by `(energy,
//! restart index)`, so the result is bit-identical at every thread
//! count. For RBM-shaped problems prefer the bipartite machine
//! ([`crate::BipartiteBrim`]), whose local-field kernel is `O(m·n)`
//! instead of this machine's dense `(m+n)²` product.

use ndarray::Array1;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use ember_ising::{IsingProblem, RngStreams, SpinVec};

use crate::{BrimConfig, FlipSchedule};

/// Result of a BRIM run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrimSolution {
    /// Spin read-out (sign of the nodal voltages) of the best state seen.
    pub state: SpinVec,
    /// Ising energy of [`BrimSolution::state`].
    pub energy: f64,
    /// Ising energy of the thresholded state after each integration step.
    pub energy_trace: Vec<f64>,
    /// Number of phase points (integration steps) traversed — the quantity
    /// the performance model converts to wall-clock time (≈12 ps each).
    pub phase_points: usize,
}

/// The all-to-all BRIM machine of Fig. 2: `N` bistable capacitive nodes and
/// a dense programmable resistive coupling mesh.
///
/// The simulator integrates the nodal ODE with forward Euler. Voltages are
/// continuous in `[−1, 1]`; the digital read-out thresholds at zero.
///
/// # Example
///
/// ```
/// use ember_brim::{BrimConfig, BrimMachine, FlipSchedule};
/// use ember_ising::generate;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = generate::random_gaussian(12, 1.0, 0.0, &mut rng);
/// let mut m = BrimMachine::new(p, BrimConfig::default());
/// m.randomize(&mut rng);
/// let before = m.energy();
/// let sol = m.quench(300);
/// assert!(sol.energy <= before);
/// ```
#[derive(Debug, Clone)]
pub struct BrimMachine {
    /// Shared immutably: restart ensembles program many machines with
    /// the same (potentially multi-megabyte) coupling matrix.
    problem: std::sync::Arc<IsingProblem>,
    config: BrimConfig,
    voltages: Array1<f64>,
    phase_points: usize,
}

impl BrimMachine {
    /// Programs `problem` onto a machine with the given configuration.
    /// Nodes start at small alternating voltages (a deterministic, unbiased
    /// initial condition).
    pub fn new(problem: IsingProblem, config: BrimConfig) -> Self {
        Self::from_shared(std::sync::Arc::new(problem), config)
    }

    /// Programs an already-shared problem (one coupling matrix, many
    /// machines — the restart-ensemble path).
    pub fn from_shared(problem: std::sync::Arc<IsingProblem>, config: BrimConfig) -> Self {
        let n = problem.len();
        let voltages = Array1::from_shape_fn(n, |i| if i % 2 == 0 { 0.01 } else { -0.01 });
        BrimMachine {
            problem,
            config,
            voltages,
            phase_points: 0,
        }
    }

    /// The programmed problem.
    pub fn problem(&self) -> &IsingProblem {
        &self.problem
    }

    /// The machine configuration.
    pub fn config(&self) -> &BrimConfig {
        &self.config
    }

    /// Current nodal voltages.
    pub fn voltages(&self) -> &Array1<f64> {
        &self.voltages
    }

    /// Total phase points traversed since construction.
    pub fn phase_points(&self) -> usize {
        self.phase_points
    }

    /// Sets every node to a uniformly random voltage in `[−1, 1]`.
    pub fn randomize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for v in self.voltages.iter_mut() {
            *v = rng.random_range(-1.0..1.0);
        }
    }

    /// Loads an explicit spin state (rails).
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length.
    pub fn load_state(&mut self, state: &SpinVec) {
        assert_eq!(state.len(), self.voltages.len(), "state length mismatch");
        for (v, s) in self.voltages.iter_mut().zip(state.values().iter()) {
            *v = *s;
        }
    }

    /// Thresholded spin read-out of the current voltages.
    pub fn read_state(&self) -> SpinVec {
        self.voltages
            .iter()
            .map(|&v| ember_ising::Spin::from_bit(v >= 0.0))
            .collect()
    }

    /// Ising energy of the thresholded current state.
    pub fn energy(&self) -> f64 {
        self.problem.energy(&self.read_state())
    }

    /// The Lyapunov function of the noiseless dynamics:
    /// `L(V) = −½VᵀJV − hᵀV − k_f/k_c · Σᵢ (Vᵢ²/2 − Vᵢ⁴/4)`.
    ///
    /// Under [`BrimMachine::step`] with zero flip probability, `L` is
    /// non-increasing (up to Euler discretization error) — the property that
    /// makes the hardware a gradient-descent machine on the energy
    /// landscape (§3.1).
    pub fn lyapunov(&self) -> f64 {
        let v = &self.voltages;
        let jv = self.problem.couplings().dot(v);
        let quad = -0.5 * v.dot(&jv) - self.problem.field().dot(v);
        let well: f64 = v
            .iter()
            .map(|&x| x * x / 2.0 - x.powi(4) / 4.0)
            .sum::<f64>();
        quad - self.config.feedback_gain() / self.config.coupling_gain() * well
    }

    /// One forward-Euler integration step with flip probability `p`.
    ///
    /// `C dVᵢ/dt = k_c (Σⱼ Jᵢⱼ Vⱼ + hᵢ) + k_f Vᵢ(1 − Vᵢ²)`, voltages
    /// clamped to the rails afterwards; then each node flips sign with
    /// probability `p` (the annealing control's random spin flips).
    pub fn step<R: Rng + ?Sized>(&mut self, p: f64, rng: &mut R) {
        let local = self.problem.couplings().dot(&self.voltages) + self.problem.field();
        let kc = self.config.coupling_gain();
        let kf = self.config.feedback_gain();
        let dt = self.config.dt();
        for (i, v) in self.voltages.iter_mut().enumerate() {
            let feedback = kf * *v * (1.0 - *v * *v);
            let dv = dt * (kc * local[i] + feedback);
            *v = (*v + dv).clamp(-1.0, 1.0);
        }
        if p > 0.0 {
            for v in self.voltages.iter_mut() {
                if rng.random::<f64>() < p {
                    *v = -*v;
                }
            }
        }
        self.phase_points += 1;
    }

    /// Runs the machine under a flip schedule, tracking the best state.
    pub fn anneal<R: Rng + ?Sized>(
        &mut self,
        schedule: &FlipSchedule,
        rng: &mut R,
    ) -> BrimSolution {
        let mut best_state = self.read_state();
        let mut best_energy = self.problem.energy(&best_state);
        let mut trace = Vec::with_capacity(schedule.steps());
        for k in 0..schedule.steps() {
            self.step(schedule.probability(k), rng);
            let state = self.read_state();
            let e = self.problem.energy(&state);
            trace.push(e);
            if e < best_energy {
                best_energy = e;
                best_state = state;
            }
        }
        BrimSolution {
            state: best_state,
            energy: best_energy,
            energy_trace: trace,
            phase_points: schedule.steps(),
        }
    }

    /// Noiseless descent to the nearest attractor (`steps` phase points) —
    /// the *settle* operation used when one side of an RBM is clamped.
    pub fn quench(&mut self, steps: usize) -> BrimSolution {
        // No randomness consumed: flip probability is zero throughout.
        let mut rng = NoRng;
        self.anneal(&FlipSchedule::quench(steps), &mut rng)
    }

    /// Best-of-`restarts` anneal ensemble, run across the rayon pool.
    ///
    /// Each restart programs a fresh machine, randomizes it from its own
    /// RNG stream (`streams.rng(restart)`), and anneals under `schedule`;
    /// the best solution (ties broken by lowest restart index) is
    /// returned with `phase_points` totalled over the whole ensemble.
    /// Bit-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`.
    pub fn anneal_ensemble(
        problem: &IsingProblem,
        config: BrimConfig,
        schedule: &FlipSchedule,
        restarts: usize,
        streams: RngStreams,
    ) -> BrimSolution {
        assert!(restarts >= 1, "need at least one restart");
        let shared = std::sync::Arc::new(problem.clone());
        let solutions: Vec<BrimSolution> = (0..restarts)
            .into_par_iter()
            .map(|r| {
                let mut rng = streams.rng(r as u64);
                let mut machine = BrimMachine::from_shared(shared.clone(), config);
                machine.randomize(&mut rng);
                machine.anneal(schedule, &mut rng)
            })
            .collect();
        let total_phase_points = restarts * schedule.steps();
        let mut best = None::<BrimSolution>;
        for sol in solutions {
            let better = match &best {
                None => true,
                Some(b) => sol.energy < b.energy,
            };
            if better {
                best = Some(sol);
            }
        }
        let mut best = best.expect("at least one restart");
        best.phase_points = total_phase_points;
        best
    }
}

/// An RNG that must never be asked for entropy; used by the noiseless
/// quench path to make "no randomness consumed" a checked invariant.
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        unreachable!("quench must not consume randomness")
    }
    fn next_u64(&mut self) -> u64 {
        unreachable!("quench must not consume randomness")
    }
    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        unreachable!("quench must not consume randomness")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_ising::generate;
    use rand::SeedableRng;

    #[test]
    fn quench_descends_lyapunov() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let p = generate::random_gaussian(16, 1.0, 0.2, &mut rng);
        let mut m = BrimMachine::new(p, BrimConfig::default().with_dt(0.02));
        m.randomize(&mut rng);
        let mut prev = m.lyapunov();
        let mut no_rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..500 {
            m.step(0.0, &mut no_rng);
            let l = m.lyapunov();
            assert!(l <= prev + 1e-6, "lyapunov increased: {prev} -> {l}");
            prev = l;
        }
    }

    #[test]
    fn ferromagnetic_ring_reaches_ground_state() {
        let p = generate::ferromagnetic_ring(10, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut m = BrimMachine::new(p, BrimConfig::default());
        let sol = m.anneal(&FlipSchedule::geometric(0.05, 1e-4, 800), &mut rng);
        assert!((sol.energy - (-10.0)).abs() < 1e-9, "energy {}", sol.energy);
    }

    #[test]
    fn matches_brute_force_on_small_glasses() {
        // Single anneals land in local minima sometimes; like the physical
        // machine, take the best of a few restarts per problem.
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut hits = 0;
        for seed in 0..6 {
            let mut prng = rand::rngs::StdRng::seed_from_u64(seed + 100);
            let p = generate::random_gaussian(10, 1.0, 0.1, &mut prng);
            let (_, ground) = p.brute_force_ground_state();
            let mut best = f64::INFINITY;
            for _ in 0..4 {
                let mut m = BrimMachine::new(p.clone(), BrimConfig::default());
                m.randomize(&mut rng);
                let sol = m.anneal(&FlipSchedule::geometric(0.08, 1e-4, 1200), &mut rng);
                assert!(sol.energy >= ground - 1e-9, "below ground?!");
                best = best.min(sol.energy);
            }
            if (best - ground).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(hits >= 5, "only {hits}/6 problems solved to optimality");
    }

    #[test]
    fn voltages_stay_within_rails() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = generate::random_gaussian(12, 2.0, 0.5, &mut rng);
        let mut m = BrimMachine::new(p, BrimConfig::default().with_dt(0.2));
        m.randomize(&mut rng);
        for _ in 0..200 {
            m.step(0.1, &mut rng);
            assert!(m.voltages().iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn load_and_read_roundtrip() {
        let p = generate::ferromagnetic_ring(6, 1.0);
        let mut m = BrimMachine::new(p, BrimConfig::default());
        let s = SpinVec::from_bits(&[true, false, true, true, false, false]);
        m.load_state(&s);
        assert_eq!(m.read_state(), s);
    }

    #[test]
    fn phase_points_accumulate() {
        let p = generate::ferromagnetic_ring(4, 1.0);
        let mut m = BrimMachine::new(p, BrimConfig::default());
        let _ = m.quench(50);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let _ = m.anneal(&FlipSchedule::constant(0.01, 25), &mut rng);
        assert_eq!(m.phase_points(), 75);
    }

    #[test]
    fn best_state_energy_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let p = generate::random_gaussian(10, 1.0, 0.0, &mut rng);
        let mut m = BrimMachine::new(p.clone(), BrimConfig::default());
        m.randomize(&mut rng);
        let sol = m.anneal(&FlipSchedule::geometric(0.05, 1e-3, 300), &mut rng);
        assert!((p.energy(&sol.state) - sol.energy).abs() < 1e-9);
        assert_eq!(sol.energy_trace.len(), 300);
    }
}
