use serde::{Deserialize, Serialize};

/// Integration and circuit parameters for the BRIM dynamical model.
///
/// All quantities are in normalized units: voltages in `[−1, 1]`, time in
/// units of the nodal `RC` constant. The paper quotes ~a dozen picoseconds
/// per phase point for the physical machine; [`BrimConfig::phase_point_ps`]
/// carries that calibration for the performance model.
///
/// All fields are private: construction is `Default` refined through the
/// `with_*` builders, the same idiom as `ember_core::GsConfig` /
/// `ember_core::BgfConfig`. Every builder validates its argument.
///
/// # Example
///
/// ```
/// use ember_brim::BrimConfig;
///
/// let config = BrimConfig::default().with_dt(0.02).with_coupling_gain(0.8);
/// assert!((config.dt() - 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrimConfig {
    dt: f64,
    coupling_gain: f64,
    feedback_gain: f64,
    phase_point_ps: f64,
}

impl BrimConfig {
    /// Euler step size (fraction of the nodal RC constant).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Gain `k_c` applied to the resistive coupling current.
    pub fn coupling_gain(&self) -> f64 {
        self.coupling_gain
    }

    /// Gain `k_f` of the bistable feedback.
    pub fn feedback_gain(&self) -> f64 {
        self.feedback_gain
    }

    /// Wall-clock picoseconds one integration step models (≈12 ps, §3.3).
    pub fn phase_point_ps(&self) -> f64 {
        self.phase_point_ps
    }

    /// Returns a copy with the given Euler step.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt ≤ 0.5` (larger steps destabilize the
    /// integration).
    #[must_use]
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0 && dt <= 0.5, "dt must be in (0, 0.5]");
        self.dt = dt;
        self
    }

    /// Returns a copy with the given coupling gain.
    ///
    /// # Panics
    ///
    /// Panics unless `coupling_gain > 0`.
    #[must_use]
    pub fn with_coupling_gain(mut self, k: f64) -> Self {
        assert!(k > 0.0, "coupling gain must be positive");
        self.coupling_gain = k;
        self
    }

    /// Returns a copy with the given feedback gain (0 disables bistability).
    ///
    /// # Panics
    ///
    /// Panics if `feedback_gain` is negative.
    #[must_use]
    pub fn with_feedback_gain(mut self, k: f64) -> Self {
        assert!(k >= 0.0, "feedback gain must be non-negative");
        self.feedback_gain = k;
        self
    }

    /// Returns a copy with the given phase-point duration in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics unless `ps > 0`.
    #[must_use]
    pub fn with_phase_point_ps(mut self, ps: f64) -> Self {
        assert!(ps > 0.0, "phase point duration must be positive");
        self.phase_point_ps = ps;
        self
    }
}

impl Default for BrimConfig {
    /// Defaults tuned for stable descent: `dt = 0.05`, `k_c = 1`,
    /// `k_f = 0.5`, 12 ps per phase point.
    fn default() -> Self {
        BrimConfig {
            dt: 0.05,
            coupling_gain: 1.0,
            feedback_gain: 0.5,
            phase_point_ps: 12.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = BrimConfig::default()
            .with_dt(0.1)
            .with_coupling_gain(2.0)
            .with_feedback_gain(0.0)
            .with_phase_point_ps(10.0);
        assert_eq!(c.dt(), 0.1);
        assert_eq!(c.coupling_gain(), 2.0);
        assert_eq!(c.feedback_gain(), 0.0);
        assert_eq!(c.phase_point_ps(), 10.0);
    }

    #[test]
    #[should_panic(expected = "dt must be")]
    fn rejects_huge_dt() {
        let _ = BrimConfig::default().with_dt(1.0);
    }

    #[test]
    #[should_panic(expected = "coupling gain")]
    fn rejects_nonpositive_gain() {
        let _ = BrimConfig::default().with_coupling_gain(0.0);
    }
}
