use serde::{Deserialize, Serialize};

/// The annealing control of the BRIM substrate: a schedule of random
/// spin-flip injection probabilities (§3.1: "Extra annealing control is
/// needed to inject random 'spin flips' to escape a local minimum").
///
/// At integration step `k` of `steps`, every node is independently flipped
/// (`Vᵢ ← −Vᵢ`) with probability `p(k)`. A decaying `p` mimics the cooling
/// schedule of simulated annealing.
///
/// # Example
///
/// ```
/// use ember_brim::FlipSchedule;
///
/// let s = FlipSchedule::geometric(0.1, 1e-3, 100);
/// assert_eq!(s.steps(), 100);
/// assert!(s.probability(0) > s.probability(99));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlipSchedule {
    p_start: f64,
    p_end: f64,
    steps: usize,
}

impl FlipSchedule {
    /// Geometric decay from `p_start` to `p_end` over `steps` steps.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p_end ≤ p_start ≤ 1`.
    pub fn geometric(p_start: f64, p_end: f64, steps: usize) -> Self {
        assert!(
            p_end > 0.0 && p_end <= p_start && p_start <= 1.0,
            "need 0 < p_end <= p_start <= 1"
        );
        FlipSchedule {
            p_start,
            p_end,
            steps,
        }
    }

    /// No flip injection at all: pure gradient descent to the nearest local
    /// minimum (`steps` integration steps). This is the noiseless mode used
    /// for Lyapunov validation and for the clamped *settle* operations of
    /// the RBM architectures.
    pub fn quench(steps: usize) -> Self {
        FlipSchedule {
            p_start: 0.0,
            p_end: 0.0,
            steps,
        }
    }

    /// Constant flip probability (an "infinite temperature bath" when high).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn constant(p: f64, steps: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        FlipSchedule {
            p_start: p,
            p_end: p,
            steps,
        }
    }

    /// Number of integration steps the schedule spans.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Flip probability at step `k` (clamped to the final value past the
    /// end).
    pub fn probability(&self, k: usize) -> f64 {
        if self.p_start == 0.0 {
            return 0.0;
        }
        if self.steps <= 1 || self.p_start == self.p_end {
            return self.p_start;
        }
        let frac = (k.min(self.steps - 1)) as f64 / (self.steps - 1) as f64;
        self.p_start * (self.p_end / self.p_start).powf(frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_endpoints() {
        let s = FlipSchedule::geometric(0.2, 0.002, 50);
        assert!((s.probability(0) - 0.2).abs() < 1e-12);
        assert!((s.probability(49) - 0.002).abs() < 1e-12);
        assert!((s.probability(1000) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn quench_is_zero_everywhere() {
        let s = FlipSchedule::quench(10);
        assert!((0..10).all(|k| s.probability(k) == 0.0));
    }

    #[test]
    fn monotone_decay() {
        let s = FlipSchedule::geometric(0.3, 1e-4, 200);
        for k in 1..200 {
            assert!(s.probability(k) <= s.probability(k - 1));
        }
    }

    #[test]
    #[should_panic(expected = "p_end")]
    fn rejects_increasing() {
        let _ = FlipSchedule::geometric(0.001, 0.1, 10);
    }
}
