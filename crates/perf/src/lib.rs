//! # ember-perf
//!
//! Analytic performance, energy and area models that regenerate the
//! paper's architecture-level results: Figure 5 (execution time), Figure 6
//! (energy), Table 2 (component area/power), and Table 3 (accelerator
//! TOPS/mm², TOPS/W).
//!
//! The paper's own numbers come from datasheet arithmetic plus Cadence
//! component models (§4.1); this crate mirrors that: a handful of
//! documented calibration constants (utilizations, link bandwidths,
//! per-bit energies, per-phase-point duration) feed closed-form
//! workload models. Absolute values are theirs to disagree with — the
//! *shape* (who wins, by what factor, where communication bites) is the
//! reproduction target, and the tests pin that shape.
//!
//! # Example
//!
//! ```
//! use ember_perf::{paper_benchmarks, tpu_time, bgf_time};
//!
//! let mnist = &paper_benchmarks()[0];
//! let speedup = tpu_time(mnist) / bgf_time(mnist).total();
//! assert!(speedup > 10.0 && speedup < 80.0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod benchmark;
mod energy;
mod report;
mod timing;

pub use area::{
    bgf_area_mm2, bgf_components, bgf_power_w, gibbs_components, gs_area_mm2, gs_power_w,
    Component, ComponentTable, Scaling,
};
pub use benchmark::{paper_benchmarks, Benchmark};
pub use energy::{bgf_energy, gpu_energy, gs_energy, tpu_energy, EnergyBreakdown};
pub use report::{fig5_rows, fig6_rows, geomean, table3_rows, AccelRow, NormalizedRow};
pub use timing::{bgf_time, gpu_time, gs_time, tpu_time, TimeBreakdown};

/// Duration of one substrate phase point (integration step), seconds.
/// §3.3: "each taking roughly a dozen picoseconds on average".
pub const PHASE_POINT_S: f64 = 12e-12;

/// TPU v1 peak throughput (ops/s) and busy power (W), from Jouppi et al.
/// 2017 (92 TOPS peak; ~40 W measured busy power).
pub const TPU_PEAK_OPS: f64 = 92e12;
/// TPU v1 busy power in watts.
pub const TPU_POWER_W: f64 = 40.0;
/// Effective TPU utilization on these small-matrix CD-k workloads.
/// TPU v1 reaches its peak only on large 256×256-friendly matmuls; RBM
/// layers (≤ 784×1024, batch 500) keep the MXU partially fed.
pub const TPU_UTILIZATION: f64 = 0.035;

/// Tesla T4 peak FP16 throughput (ops/s) and board power (W).
pub const GPU_PEAK_OPS: f64 = 65e12;
/// T4 board power in watts.
pub const GPU_POWER_W: f64 = 70.0;
/// Effective T4 utilization on the same workloads (small kernels, kernel
/// launch overheads): GPUs fare worse than the TPU here, as in Fig. 5.
pub const GPU_UTILIZATION: f64 = 0.012;

/// Host↔substrate link bandwidth for the GS architecture (bytes/s) — a
/// PCIe-class effective bandwidth.
pub const GS_LINK_BYTES_PER_S: f64 = 8e9;
/// Energy per transferred bit over the GS host link (PCIe-class, J/bit).
pub const GS_LINK_J_PER_BIT: f64 = 10e-12;

/// Sample-streaming bandwidth into the BGF's visible latches (bytes/s) —
/// an on-board, DTC-fed interface.
pub const BGF_STREAM_BYTES_PER_S: f64 = 100e9;
/// Energy per streamed bit including the DTC conversion and latch drive
/// (J/bit).
pub const BGF_STREAM_J_PER_BIT: f64 = 20e-12;

/// Effective TPU utilization on the GS host's residual work. The
/// gradient-accumulation GEMMs (`VᵀH` outer-product batches) are skinnier
/// than the forward/sampling matmuls and run below the full-pipeline
/// efficiency.
pub const GS_HOST_UTILIZATION: f64 = 0.023;

/// Phase points for one clamped conditional settle on the GS substrate.
pub const GS_SETTLE_PP: f64 = 100.0;

/// BGF positive-phase settle: one parallel relaxation pass, whose
/// trajectory length scales with the node count (§3.3 equates the
/// s-step Markov chain with a trajectory of ≈ s phase points).
pub const BGF_SETTLE_PASSES: f64 = 1.0;
/// BGF negative-phase anneal: a short random walk worth ≈ 3 passes.
pub const BGF_ANNEAL_PASSES: f64 = 3.0;

/// Effective MAC rate of the BGF coupling mesh for the Table 3
/// "effective TOPS" accounting: the analog array behaves like an `N²`
/// MAC array at this equivalent update rate.
pub const BGF_EFFECTIVE_MESH_HZ: f64 = 0.5e9;
