use serde::Serialize;

use crate::area::bgf_components;
use crate::{
    bgf_energy, bgf_time, gpu_energy, gpu_time, gs_energy, gs_time, paper_benchmarks, tpu_energy,
    tpu_time, BGF_EFFECTIVE_MESH_HZ,
};

/// One row of Figure 5 / Figure 6: values normalized to BGF.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NormalizedRow {
    /// Benchmark name.
    pub name: &'static str,
    /// TPU v1 normalized to BGF.
    pub tpu: f64,
    /// Gibbs sampler normalized to BGF.
    pub gs: f64,
    /// Tesla T4 normalized to BGF.
    pub gpu: f64,
}

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics on an empty slice or non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positives");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The rows of Figure 5: execution time of TPU/GS/GPU normalized over BGF
/// for every benchmark, plus a final `GeoMean` row.
pub fn fig5_rows() -> Vec<NormalizedRow> {
    let mut rows: Vec<NormalizedRow> = paper_benchmarks()
        .iter()
        .map(|b| {
            let bgf = bgf_time(b).total();
            NormalizedRow {
                name: b.name,
                tpu: tpu_time(b) / bgf,
                gs: gs_time(b).total() / bgf,
                gpu: gpu_time(b) / bgf,
            }
        })
        .collect();
    push_geomean(&mut rows);
    rows
}

/// The rows of Figure 6: energy of TPU/GS/GPU normalized over BGF.
pub fn fig6_rows() -> Vec<NormalizedRow> {
    let mut rows: Vec<NormalizedRow> = paper_benchmarks()
        .iter()
        .map(|b| {
            let bgf = bgf_energy(b).total();
            NormalizedRow {
                name: b.name,
                tpu: tpu_energy(b) / bgf,
                gs: gs_energy(b).total() / bgf,
                gpu: gpu_energy(b) / bgf,
            }
        })
        .collect();
    push_geomean(&mut rows);
    rows
}

fn push_geomean(rows: &mut Vec<NormalizedRow>) {
    let tpu = geomean(&rows.iter().map(|r| r.tpu).collect::<Vec<_>>());
    let gs = geomean(&rows.iter().map(|r| r.gs).collect::<Vec<_>>());
    let gpu = geomean(&rows.iter().map(|r| r.gpu).collect::<Vec<_>>());
    rows.push(NormalizedRow {
        name: "GeoMean",
        tpu,
        gs,
        gpu,
    });
}

/// One row of Table 3: effective compute density and efficiency.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AccelRow {
    /// Accelerator name.
    pub name: &'static str,
    /// Effective TOPS per mm².
    pub tops_per_mm2: f64,
    /// Effective TOPS per watt.
    pub tops_per_w: f64,
}

/// The rows of Table 3. TPU v1/v4 and TIMELY values are the published
/// numbers the paper quotes; the BGF row is *derived* from this crate's
/// area/power model and the effective mesh MAC rate.
pub fn table3_rows() -> Vec<AccelRow> {
    let n = 1600;
    let eff_ops = 2.0 * (n * n) as f64 * BGF_EFFECTIVE_MESH_HZ; // MAC = 2 ops
                                                                // Square-array accounting, same as Table 2's columns.
    let area: f64 = bgf_components().iter().map(|c| c.area_mm2(n)).sum();
    let power: f64 = bgf_components().iter().map(|c| c.power_mw(n)).sum::<f64>() / 1000.0;
    vec![
        AccelRow {
            name: "TPU (v1)",
            tops_per_mm2: 1.16,
            tops_per_w: 2.30,
        },
        AccelRow {
            name: "TPU (v4)",
            tops_per_mm2: 1.91,
            tops_per_w: 1.62,
        },
        AccelRow {
            name: "TIMELY",
            tops_per_mm2: 38.3,
            tops_per_w: 21.0,
        },
        AccelRow {
            name: "BGF (1600x1600)",
            tops_per_mm2: eff_ops / 1e12 / area,
            tops_per_w: eff_ops / 1e12 / power,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_geomeans_match_paper_shape() {
        let rows = fig5_rows();
        let gm = rows.last().expect("geomean row");
        assert_eq!(gm.name, "GeoMean");
        assert!(gm.tpu > 15.0 && gm.tpu < 60.0, "TPU/BGF {}", gm.tpu);
        assert!(gm.gs < gm.tpu, "GS must beat TPU");
        assert!(gm.gpu > gm.tpu, "GPU must trail TPU");
        // GS ≈ TPU/2.
        let gs_speedup = gm.tpu / gm.gs;
        assert!(
            gs_speedup > 1.4 && gs_speedup < 3.0,
            "GS speedup {gs_speedup}"
        );
    }

    #[test]
    fn fig6_geomeans_match_paper_shape() {
        let rows = fig6_rows();
        let gm = rows.last().expect("geomean row");
        assert!(
            gm.tpu > 300.0 && gm.tpu < 4000.0,
            "TPU/BGF energy {}",
            gm.tpu
        );
        assert!(gm.gs > 1.0 && gm.gs < gm.tpu);
    }

    #[test]
    fn table3_bgf_row_close_to_paper() {
        let rows = table3_rows();
        let bgf = rows.last().expect("bgf row");
        // Paper: 119 TOPS/mm², 3657 TOPS/W.
        assert!(
            (bgf.tops_per_mm2 - 119.0).abs() / 119.0 < 0.25,
            "TOPS/mm2 {}",
            bgf.tops_per_mm2
        );
        assert!(
            (bgf.tops_per_w - 3657.0).abs() / 3657.0 < 0.3,
            "TOPS/W {}",
            bgf.tops_per_w
        );
        // And it dominates the digital accelerators on efficiency.
        assert!(bgf.tops_per_w > 100.0 * rows[0].tops_per_w);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn every_benchmark_has_rows() {
        assert_eq!(fig5_rows().len(), 12); // 11 benchmarks + geomean
        assert_eq!(fig6_rows().len(), 12);
    }
}
