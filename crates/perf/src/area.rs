use serde::{Deserialize, Serialize};

/// How a component count scales with the array dimension `N` (for an
/// `N × N` substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scaling {
    /// One instance per coupler: count `N²`.
    PerCoupler,
    /// One instance per node: count `N`.
    PerNode,
}

/// One substrate building block with area/power calibrated at the
/// `400 × 400` design point of Table 2 (Cadence GPDK045 models in the
/// paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component name as it appears in Table 2.
    pub name: &'static str,
    /// Area at `N = 400`, mm².
    pub area_mm2_at_400: f64,
    /// Power at `N = 400`, mW.
    pub power_mw_at_400: f64,
    /// Count scaling law.
    pub scaling: Scaling,
}

impl Component {
    fn factor(&self, n: usize) -> f64 {
        match self.scaling {
            Scaling::PerCoupler => (n as f64 / 400.0).powi(2),
            Scaling::PerNode => n as f64 / 400.0,
        }
    }

    /// Area at array dimension `N`, mm².
    pub fn area_mm2(&self, n: usize) -> f64 {
        self.area_mm2_at_400 * self.factor(n)
    }

    /// Power at array dimension `N`, mW.
    pub fn power_mw(&self, n: usize) -> f64 {
        self.power_mw_at_400 * self.factor(n)
    }

    /// Area for an `m × n` rectangular (bipartite) array, mm².
    pub fn area_mm2_rect(&self, m: usize, n: usize) -> f64 {
        match self.scaling {
            Scaling::PerCoupler => self.area_mm2_at_400 * (m * n) as f64 / (400.0 * 400.0),
            Scaling::PerNode => self.area_mm2_at_400 * (m + n) as f64 / 400.0,
        }
    }

    /// Power for an `m × n` rectangular array, mW.
    pub fn power_mw_rect(&self, m: usize, n: usize) -> f64 {
        match self.scaling {
            Scaling::PerCoupler => self.power_mw_at_400 * (m * n) as f64 / (400.0 * 400.0),
            Scaling::PerNode => self.power_mw_at_400 * (m + n) as f64 / 400.0,
        }
    }
}

/// The Gibbs-sampler substrate's bill of materials (Table 2, calibrated
/// at the 400×400 column).
pub fn gibbs_components() -> Vec<Component> {
    vec![
        Component {
            name: "CU (Gibbs)",
            area_mm2_at_400: 0.03,
            power_mw_at_400: 30.0,
            scaling: Scaling::PerCoupler,
        },
        common("SU", 0.0024, 3.26),
        common("Comparator", 0.024, 2.0),
        common("DTC", 0.0004, 7.0),
        common("RNG", 0.007, 18.24),
    ]
}

/// The BGF substrate's bill of materials: the coupling unit grows to hold
/// the differential pair plus training circuit (Fig. 14), the node-side
/// units are shared with GS.
pub fn bgf_components() -> Vec<Component> {
    vec![
        Component {
            name: "CU (BGF)",
            area_mm2_at_400: 1.28,
            power_mw_at_400: 36.0,
            scaling: Scaling::PerCoupler,
        },
        common("SU", 0.0024, 3.26),
        common("Comparator", 0.024, 2.0),
        common("DTC", 0.0004, 7.0),
        common("RNG", 0.007, 18.24),
    ]
}

fn common(name: &'static str, area: f64, power: f64) -> Component {
    Component {
        name,
        area_mm2_at_400: area,
        power_mw_at_400: power,
        scaling: Scaling::PerNode,
    }
}

/// A rendered Table 2: per-component and total area/power at a set of
/// array sizes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComponentTable {
    /// Array dimensions (the paper uses 400, 800, 1600).
    pub sizes: Vec<usize>,
    /// `(component name, [(area mm², power mW); sizes.len()])` rows.
    pub rows: Vec<(&'static str, Vec<(f64, f64)>)>,
    /// Total `(area, power)` per size.
    pub totals: Vec<(f64, f64)>,
}

impl ComponentTable {
    /// Builds the table for a component set at the given sizes.
    pub fn build(components: &[Component], sizes: &[usize]) -> Self {
        let rows: Vec<(&'static str, Vec<(f64, f64)>)> = components
            .iter()
            .map(|c| {
                (
                    c.name,
                    sizes
                        .iter()
                        .map(|&n| (c.area_mm2(n), c.power_mw(n)))
                        .collect(),
                )
            })
            .collect();
        let totals = (0..sizes.len())
            .map(|i| {
                rows.iter().fold((0.0, 0.0), |acc, (_, cells)| {
                    (acc.0 + cells[i].0, acc.1 + cells[i].1)
                })
            })
            .collect();
        ComponentTable {
            sizes: sizes.to_vec(),
            rows,
            totals,
        }
    }
}

/// Total substrate area (mm²) for a bipartite `m × n` BGF array.
pub fn bgf_area_mm2(m: usize, n: usize) -> f64 {
    bgf_components().iter().map(|c| c.area_mm2_rect(m, n)).sum()
}

/// Total substrate power (W) for a bipartite `m × n` BGF array.
pub fn bgf_power_w(m: usize, n: usize) -> f64 {
    bgf_components()
        .iter()
        .map(|c| c.power_mw_rect(m, n))
        .sum::<f64>()
        / 1000.0
}

/// Total substrate area (mm²) for a bipartite `m × n` GS array.
pub fn gs_area_mm2(m: usize, n: usize) -> f64 {
    gibbs_components()
        .iter()
        .map(|c| c.area_mm2_rect(m, n))
        .sum()
}

/// Total substrate power (W) for a bipartite `m × n` GS array.
pub fn gs_power_w(m: usize, n: usize) -> f64 {
    gibbs_components()
        .iter()
        .map(|c| c.power_mw_rect(m, n))
        .sum::<f64>()
        / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table2_calibration_column() {
        let t = ComponentTable::build(&gibbs_components(), &[400, 800, 1600]);
        // CU (Gibbs) row: 0.03/30 → 0.12/120 → 0.48/480.
        let cu = &t.rows[0];
        assert_eq!(cu.0, "CU (Gibbs)");
        assert!((cu.1[0].0 - 0.03).abs() < 1e-12);
        assert!((cu.1[1].0 - 0.12).abs() < 1e-12);
        assert!((cu.1[2].1 - 480.0).abs() < 1e-9);
    }

    #[test]
    fn totals_close_to_paper() {
        // Paper totals: Gibbs 0.065 mm² / 60.5 mW at 400; BGF 21.5 mm² /
        // 700 mW at 1600.
        let gibbs = ComponentTable::build(&gibbs_components(), &[400]);
        assert!(
            (gibbs.totals[0].0 - 0.065).abs() < 0.005,
            "{}",
            gibbs.totals[0].0
        );
        assert!(
            (gibbs.totals[0].1 - 60.5).abs() < 1.0,
            "{}",
            gibbs.totals[0].1
        );

        let bgf = ComponentTable::build(&bgf_components(), &[1600]);
        assert!((bgf.totals[0].0 - 21.5).abs() < 1.0, "{}", bgf.totals[0].0);
        assert!(
            (bgf.totals[0].1 - 700.0).abs() < 30.0,
            "{}",
            bgf.totals[0].1
        );
    }

    #[test]
    fn coupler_area_dominates_at_scale() {
        // §3.1: "the vast majority of the area is devoted to the coupling
        // units as it scales with N²".
        let comps = bgf_components();
        let cu_area = comps[0].area_mm2(1600);
        let rest: f64 = comps[1..].iter().map(|c| c.area_mm2(1600)).sum();
        assert!(cu_area > 10.0 * rest);
    }

    #[test]
    fn rect_matches_square_when_equal() {
        for c in bgf_components() {
            let sq = c.area_mm2(800);
            let rect = c.area_mm2_rect(800, 800);
            match c.scaling {
                Scaling::PerCoupler => assert!((sq - rect).abs() < 1e-9),
                // Square N×N has N nodes per side in the paper's Table 2
                // accounting (bipartite column/row units); the rect form
                // counts both sides.
                Scaling::PerNode => assert!((rect - 2.0 * sq).abs() < 1e-9),
            }
        }
    }

    #[test]
    fn helper_totals_positive() {
        assert!(bgf_area_mm2(784, 200) > 0.0);
        assert!(bgf_power_w(784, 200) > 0.0);
        assert!(gs_area_mm2(784, 200) < bgf_area_mm2(784, 200));
        assert!(gs_power_w(784, 200) < bgf_power_w(784, 200));
    }
}
