use serde::{Deserialize, Serialize};

use crate::{
    Benchmark, BGF_ANNEAL_PASSES, BGF_SETTLE_PASSES, BGF_STREAM_BYTES_PER_S, GPU_PEAK_OPS,
    GPU_UTILIZATION, GS_HOST_UTILIZATION, GS_LINK_BYTES_PER_S, GS_SETTLE_PP, PHASE_POINT_S,
    TPU_PEAK_OPS, TPU_UTILIZATION,
};

/// Per-phase time decomposition of one training run, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Time spent in the analog substrate.
    pub substrate_s: f64,
    /// Time spent computing on the digital host.
    pub host_s: f64,
    /// Host↔substrate communication time.
    pub comm_s: f64,
}

impl TimeBreakdown {
    /// Total wall-clock time.
    pub fn total(&self) -> f64 {
        self.substrate_s + self.host_s + self.comm_s
    }

    /// Fraction of the *host-waiting* time (host + comm) spent on
    /// communication — the paper notes this is about a quarter for GS.
    pub fn comm_fraction_of_wait(&self) -> f64 {
        let wait = self.host_s + self.comm_s;
        if wait == 0.0 {
            0.0
        } else {
            self.comm_s / wait
        }
    }
}

/// Digital training ops for one sample of one layer `(m, n)` under CD-k:
/// one hidden inference, `2k` sampling matvecs, gradient accumulation and
/// update (`(2k+4)·m·n` MACs = `(4k+8)·m·n` ops).
fn cd_ops_per_sample(m: usize, n: usize, k: usize) -> f64 {
    ((2 * k + 4) * 2 * m * n) as f64
}

/// Host-side ops per sample when the substrate does the sampling (GS):
/// only the two batched outer-product accumulations and the amortized
/// update survive (`4·m·n` MACs = `8·m·n` ops).
fn gs_host_ops_per_sample(m: usize, n: usize) -> f64 {
    (8 * m * n) as f64
}

/// Full-software training time on the TPU v1 host (seconds).
pub fn tpu_time(b: &Benchmark) -> f64 {
    let eff = TPU_PEAK_OPS * TPU_UTILIZATION;
    let ops: f64 = b
        .layers
        .iter()
        .map(|&(m, n)| cd_ops_per_sample(m, n, b.k) * b.samples as f64)
        .sum();
    ops / eff
}

/// Full-software training time on the Tesla T4 (seconds).
pub fn gpu_time(b: &Benchmark) -> f64 {
    let eff = GPU_PEAK_OPS * GPU_UTILIZATION;
    let ops: f64 = b
        .layers
        .iter()
        .map(|&(m, n)| cd_ops_per_sample(m, n, b.k) * b.samples as f64)
        .sum();
    ops / eff
}

/// GS training time (§3.2): substrate does `2k+1` clamped settles per
/// sample; host does gradient accumulation/update; the link carries the
/// per-sample reads (`h⁺`, final `v⁻`, `h⁻`) plus per-batch programming.
pub fn gs_time(b: &Benchmark) -> TimeBreakdown {
    let eff = TPU_PEAK_OPS * GS_HOST_UTILIZATION;
    let mut t = TimeBreakdown::default();
    for &(m, n) in &b.layers {
        let per_sample_substrate = (2 * b.k + 1) as f64 * GS_SETTLE_PP * PHASE_POINT_S;
        let per_sample_host = gs_host_ops_per_sample(m, n) / eff;
        // Write the clamp (m), read h⁺ (n), read final v⁻/h⁻ (m + n), plus
        // the per-batch weight programming amortized per sample.
        let per_sample_bytes = (2 * m + 2 * n) as f64 + (m * n) as f64 / b.batch as f64;
        let per_sample_comm = per_sample_bytes / GS_LINK_BYTES_PER_S;
        t.substrate_s += per_sample_substrate * b.samples as f64;
        t.host_s += per_sample_host * b.samples as f64;
        t.comm_s += per_sample_comm * b.samples as f64;
    }
    t
}

/// BGF training time (§3.3): per sample, one positive-phase relaxation
/// pass plus a short annealed walk (trajectory lengths scale with the
/// layer's node count), with the host only streaming the sample bytes.
/// The one-time ADC read-out at the end is charged to comm.
pub fn bgf_time(b: &Benchmark) -> TimeBreakdown {
    let mut t = TimeBreakdown::default();
    for &(m, n) in &b.layers {
        let passes = BGF_SETTLE_PASSES + BGF_ANNEAL_PASSES;
        let per_sample_substrate = passes * (m + n) as f64 * PHASE_POINT_S;
        let per_sample_comm = m as f64 / BGF_STREAM_BYTES_PER_S;
        t.substrate_s += per_sample_substrate * b.samples as f64;
        t.comm_s += per_sample_comm * b.samples as f64;
        // Final read-out: 2(mn + m + n) ADC words, once.
        t.comm_s += (2 * (m * n + m + n)) as f64 / GS_LINK_BYTES_PER_S;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_benchmarks;

    fn mnist() -> Benchmark {
        paper_benchmarks().into_iter().next().expect("non-empty")
    }

    #[test]
    fn tpu_slower_than_gs_slower_than_bgf() {
        for b in paper_benchmarks() {
            let tpu = tpu_time(&b);
            let gs = gs_time(&b).total();
            let bgf = bgf_time(&b).total();
            assert!(tpu > gs, "{}: TPU {tpu} vs GS {gs}", b.name);
            assert!(gs > bgf, "{}: GS {gs} vs BGF {bgf}", b.name);
        }
    }

    #[test]
    fn gpu_slower_than_tpu() {
        for b in paper_benchmarks() {
            assert!(gpu_time(&b) > tpu_time(&b), "{}", b.name);
        }
    }

    #[test]
    fn gs_speedup_over_tpu_about_two() {
        // Paper: "BGF has 29x geometric mean speedup over TPU, whereas GS
        // has 2x".
        let mut logsum = 0.0;
        let bs = paper_benchmarks();
        for b in &bs {
            logsum += (tpu_time(b) / gs_time(b).total()).ln();
        }
        let geomean = (logsum / bs.len() as f64).exp();
        assert!(
            geomean > 1.4 && geomean < 3.0,
            "GS geomean speedup {geomean}, expected ≈2"
        );
    }

    #[test]
    fn bgf_speedup_over_tpu_about_29() {
        let mut logsum = 0.0;
        let bs = paper_benchmarks();
        for b in &bs {
            logsum += (tpu_time(b) / bgf_time(b).total()).ln();
        }
        let geomean = (logsum / bs.len() as f64).exp();
        assert!(
            geomean > 15.0 && geomean < 60.0,
            "BGF geomean speedup {geomean}, expected ≈29"
        );
    }

    #[test]
    fn gs_comm_is_meaningful_fraction_of_wait() {
        // "communication ... amounts to about a quarter of time GS spends
        // waiting for host".
        let frac = gs_time(&mnist()).comm_fraction_of_wait();
        assert!(frac > 0.1 && frac < 0.5, "comm fraction {frac}");
    }

    #[test]
    fn bgf_host_time_is_zero() {
        let t = bgf_time(&mnist());
        assert_eq!(t.host_s, 0.0);
        assert!(t.substrate_s > 0.0);
    }

    #[test]
    fn times_scale_with_samples() {
        let mut b = mnist();
        let t1 = tpu_time(&b);
        b.samples *= 2;
        assert!((tpu_time(&b) / t1 - 2.0).abs() < 1e-9);
    }
}
