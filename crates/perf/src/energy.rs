use serde::{Deserialize, Serialize};

use crate::area::{bgf_power_w, gs_power_w};
use crate::{
    bgf_time, gpu_time, gs_time, tpu_time, Benchmark, BGF_STREAM_J_PER_BIT, GPU_POWER_W,
    GS_LINK_J_PER_BIT, TPU_POWER_W,
};

/// Per-phase energy decomposition of one training run, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy burned in the analog substrate.
    pub substrate_j: f64,
    /// Energy burned on the digital host.
    pub host_j: f64,
    /// Link/streaming energy.
    pub comm_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.substrate_j + self.host_j + self.comm_j
    }
}

/// Full-software training energy on the TPU v1 (joules).
pub fn tpu_energy(b: &Benchmark) -> f64 {
    tpu_time(b) * TPU_POWER_W
}

/// Full-software training energy on the Tesla T4 (joules).
pub fn gpu_energy(b: &Benchmark) -> f64 {
    gpu_time(b) * GPU_POWER_W
}

/// GS training energy: host runs at TPU busy power during its share,
/// the substrate at its component-model power during settles, and each
/// transferred bit costs PCIe-class energy.
pub fn gs_energy(b: &Benchmark) -> EnergyBreakdown {
    let t = gs_time(b);
    let mut substrate_power = 0.0;
    for &(m, n) in &b.layers {
        substrate_power += gs_power_w(m, n);
    }
    let comm_bytes: f64 = b
        .layers
        .iter()
        .map(|&(m, n)| {
            ((2 * m + 2 * n) as f64 + (m * n) as f64 / b.batch as f64) * b.samples as f64
        })
        .sum();
    EnergyBreakdown {
        substrate_j: t.substrate_s * substrate_power,
        host_j: t.host_s * TPU_POWER_W,
        comm_j: comm_bytes * 8.0 * GS_LINK_J_PER_BIT,
    }
}

/// BGF training energy: substrate power during the relaxation passes,
/// streaming energy per sample bit, no host compute.
pub fn bgf_energy(b: &Benchmark) -> EnergyBreakdown {
    let t = bgf_time(b);
    let mut substrate_power = 0.0;
    for &(m, n) in &b.layers {
        substrate_power += bgf_power_w(m, n);
    }
    let stream_bytes: f64 = b
        .layers
        .iter()
        .map(|&(m, _)| m as f64 * b.samples as f64)
        .sum();
    EnergyBreakdown {
        substrate_j: t.substrate_s * substrate_power,
        host_j: 0.0,
        comm_j: stream_bytes * 8.0 * BGF_STREAM_J_PER_BIT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_benchmarks;

    #[test]
    fn energy_ordering_matches_fig6() {
        for b in paper_benchmarks() {
            let tpu = tpu_energy(&b);
            let gs = gs_energy(&b).total();
            let bgf = bgf_energy(&b).total();
            assert!(tpu > gs, "{}: TPU {tpu} vs GS {gs}", b.name);
            assert!(gs > bgf, "{}: GS {gs} vs BGF {bgf}", b.name);
        }
    }

    #[test]
    fn tpu_to_bgf_energy_about_1000x() {
        let mut logsum = 0.0;
        let bs = paper_benchmarks();
        for b in &bs {
            logsum += (tpu_energy(b) / bgf_energy(b).total()).ln();
        }
        let geomean = (logsum / bs.len() as f64).exp();
        assert!(
            geomean > 300.0 && geomean < 4000.0,
            "TPU/BGF energy geomean {geomean}, expected ≈1000"
        );
    }

    #[test]
    fn gpu_energy_worst() {
        for b in paper_benchmarks() {
            assert!(gpu_energy(&b) > tpu_energy(&b), "{}", b.name);
        }
    }

    #[test]
    fn bgf_energy_has_no_host_component() {
        let b = &paper_benchmarks()[0];
        let e = bgf_energy(b);
        assert_eq!(e.host_j, 0.0);
        assert!(e.substrate_j > 0.0 && e.comm_j > 0.0);
    }
}
