use serde::Serialize;

/// One evaluation workload: the RBM (or greedy DBN stack) shape of
/// Table 1 plus the training regime of Figures 5–6 (batch 500, CD-10).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Benchmark {
    /// Display name, matching Fig. 5's x-axis labels.
    pub name: &'static str,
    /// RBM layers `(visible, hidden)`; DBN workloads list each greedily
    /// trained layer (the final 10/26-way softmax head is host-side in
    /// every configuration and excluded, as in the paper).
    pub layers: Vec<(usize, usize)>,
    /// Training-set size (samples per epoch).
    pub samples: usize,
    /// Minibatch size (500 in Figs. 5–6).
    pub batch: usize,
    /// Gibbs steps per negative phase on the von-Neumann/GS path.
    pub k: usize,
}

impl Benchmark {
    /// Total coupler count `Σ mᵢ·nᵢ`.
    pub fn coupler_count(&self) -> usize {
        self.layers.iter().map(|&(m, n)| m * n).sum()
    }

    /// Total node count `Σ (mᵢ+nᵢ)` (layers are trained one at a time, so
    /// the substrate must fit the largest layer; this sum is used for
    /// per-sample trajectory lengths).
    pub fn node_count(&self) -> usize {
        self.layers.iter().map(|&(m, n)| m + n).sum()
    }

    /// The widest layer's node count — what the physical array must fit.
    pub fn max_layer_nodes(&self) -> usize {
        self.layers
            .iter()
            .map(|&(m, n)| m + n)
            .max()
            .expect("benchmarks have at least one layer")
    }

    /// Bytes of visible data streamed per sample (first-layer width; 8-bit
    /// values).
    pub fn sample_bytes(&self) -> usize {
        self.layers.first().map(|&(m, _)| m).unwrap_or(0)
    }
}

/// The eleven benchmarks of Figures 5–6, with the shapes of Table 1
/// (training regime: 60k samples, batch 500, CD-10).
pub fn paper_benchmarks() -> Vec<Benchmark> {
    let mk = |name, layers: Vec<(usize, usize)>| Benchmark {
        name,
        layers,
        samples: 60_000,
        batch: 500,
        k: 10,
    };
    vec![
        mk("MNIST_RBM", vec![(784, 200)]),
        mk("KMNIST_RBM", vec![(784, 500)]),
        mk("FMNIST_RBM", vec![(784, 784)]),
        mk("EMNIST_RBM", vec![(784, 1024)]),
        mk("SmallNorb_RBM", vec![(36, 1024)]),
        mk("CIFAR10_RBM", vec![(108, 1024)]),
        mk("MNIST_DBN", vec![(784, 500), (500, 500)]),
        mk("KMNIST_DBN", vec![(784, 500), (500, 1000)]),
        mk("FMNIST_DBN", vec![(784, 784), (784, 1000)]),
        mk("EMNIST_DBN", vec![(784, 784), (784, 784)]),
        mk("RC_RBM", vec![(943, 100)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_benchmarks_matching_fig5() {
        let bs = paper_benchmarks();
        assert_eq!(bs.len(), 11);
        assert_eq!(bs[0].name, "MNIST_RBM");
        assert_eq!(bs[0].layers, vec![(784, 200)]);
        assert_eq!(bs[10].name, "RC_RBM");
    }

    #[test]
    fn helper_counts() {
        let b = Benchmark {
            name: "t",
            layers: vec![(784, 200), (200, 100)],
            samples: 10,
            batch: 5,
            k: 1,
        };
        assert_eq!(b.coupler_count(), 784 * 200 + 200 * 100);
        assert_eq!(b.node_count(), 984 + 300);
        assert_eq!(b.max_layer_nodes(), 984);
        assert_eq!(b.sample_bytes(), 784);
    }

    #[test]
    fn dbn_configs_match_table1() {
        let bs = paper_benchmarks();
        let mnist_dbn = bs.iter().find(|b| b.name == "MNIST_DBN").unwrap();
        // 784-500-500-10 => RBM layers 784x500, 500x500.
        assert_eq!(mnist_dbn.layers, vec![(784, 500), (500, 500)]);
        let emnist_dbn = bs.iter().find(|b| b.name == "EMNIST_DBN").unwrap();
        // 784-784-784-26.
        assert_eq!(emnist_dbn.layers, vec![(784, 784), (784, 784)]);
    }
}
