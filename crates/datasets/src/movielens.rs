//! The MovieLens-100k-like synthetic rating dataset: 943 users × 1682
//! items (the real dataset's shape), ratings 1–5 generated from a latent
//! factor model, ~100k observed ratings.
//!
//! The collaborative-filtering RBM of Table 1 is `943-100`: items are the
//! *samples* and the 943 users are the visible units (an item-based
//! binary-preference RBM; see DESIGN.md §2 for the substitution note
//! relative to the softmax-visible RBM of the paper's reference \[57\]).

use ndarray::Array2;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Number of users (real MovieLens-100k value).
pub const USERS: usize = 943;
/// Number of items (real MovieLens-100k value).
pub const ITEMS: usize = 1682;

/// One observed rating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rating {
    /// User index in `0..USERS`.
    pub user: usize,
    /// Item index in `0..ITEMS`.
    pub item: usize,
    /// Star rating in `1..=5`.
    pub stars: u8,
}

/// The synthetic rating dataset with a train/test split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovieLens {
    train: Vec<Rating>,
    test: Vec<Rating>,
    users: usize,
    items: usize,
}

impl MovieLens {
    /// Training ratings.
    pub fn train(&self) -> &[Rating] {
        &self.train
    }

    /// Held-out test ratings.
    pub fn test(&self) -> &[Rating] {
        &self.test
    }

    /// Number of users (visible units of the CF-RBM).
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of items (training samples of the CF-RBM).
    pub fn items(&self) -> usize {
        self.items
    }

    /// The item-based binary preference matrix from the *training* split:
    /// row = item, column = user, entry 1 iff the user rated the item
    /// ≥ `like_threshold` stars. This is the `(items × 943)` sample matrix
    /// the 943-100 RBM trains on.
    pub fn item_user_matrix(&self, like_threshold: u8) -> Array2<f64> {
        let mut m = Array2::zeros((self.items, self.users));
        for r in &self.train {
            if r.stars >= like_threshold {
                m[[r.item, r.user]] = 1.0;
            }
        }
        m
    }

    /// Ratings per item in the training split (for filtering cold items).
    pub fn train_counts_per_item(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.items];
        for r in &self.train {
            counts[r.item] += 1;
        }
        counts
    }
}

/// Generates the dataset: `total_ratings` observations (~100k for the real
/// scale), `test_fraction` of them held out, from a latent-factor model
/// `r = clamp(round(3.0 + uᵀv + ε), 1, 5)` with user/item factors of
/// dimension 6.
///
/// # Panics
///
/// Panics if `test_fraction` is outside `(0, 1)` or `total_ratings` is 0.
pub fn generate(total_ratings: usize, test_fraction: f64, seed: u64) -> MovieLens {
    assert!(total_ratings > 0, "need at least one rating");
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let factors = 6;
    let normal = Normal::new(0.0, 0.45).expect("valid sigma");
    // Contiguous (rows × factors) factor matrices; row-major generation
    // keeps the RNG draw order (and thus the dataset) identical to the
    // earlier Vec<Vec<f64>> representation.
    let user_f: Array2<f64> = Array2::from_shape_fn((USERS, factors), |_| normal.sample(&mut rng));
    let item_f: Array2<f64> = Array2::from_shape_fn((ITEMS, factors), |_| normal.sample(&mut rng));
    // Per-user and per-item bias (some users rate high, some items are good).
    let user_bias: Vec<f64> = (0..USERS).map(|_| normal.sample(&mut rng)).collect();
    let item_bias: Vec<f64> = (0..ITEMS).map(|_| normal.sample(&mut rng)).collect();
    let noise = Normal::new(0.0, 0.35).expect("valid sigma");

    let mut seen = std::collections::HashSet::with_capacity(total_ratings * 2);
    let mut ratings = Vec::with_capacity(total_ratings);
    while ratings.len() < total_ratings {
        let user = rng.random_range(0..USERS);
        let item = rng.random_range(0..ITEMS);
        if !seen.insert((user, item)) {
            continue;
        }
        let dot: f64 = user_f.row(user).dot(&item_f.row(item));
        let raw = 3.0 + dot * 1.6 + user_bias[user] + item_bias[item] + noise.sample(&mut rng);
        let stars = raw.round().clamp(1.0, 5.0) as u8;
        ratings.push(Rating { user, item, stars });
    }

    // Shuffle and split.
    for i in (1..ratings.len()).rev() {
        let j = rng.random_range(0..=i);
        ratings.swap(i, j);
    }
    let test_len = ((total_ratings as f64) * test_fraction).round() as usize;
    let test = ratings.split_off(total_ratings - test_len);

    MovieLens {
        train: ratings,
        test,
        users: USERS,
        items: ITEMS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_movielens_100k() {
        let ml = generate(5000, 0.1, 1);
        assert_eq!(ml.users(), 943);
        assert_eq!(ml.items(), 1682);
        assert_eq!(ml.train().len() + ml.test().len(), 5000);
        assert_eq!(ml.test().len(), 500);
    }

    #[test]
    fn ratings_in_star_range() {
        let ml = generate(3000, 0.2, 2);
        for r in ml.train().iter().chain(ml.test()) {
            assert!((1..=5).contains(&r.stars));
            assert!(r.user < USERS && r.item < ITEMS);
        }
    }

    #[test]
    fn ratings_use_full_scale() {
        let ml = generate(20000, 0.1, 3);
        let mut hist = [0usize; 6];
        for r in ml.train() {
            hist[r.stars as usize] += 1;
        }
        for (s, &count) in hist.iter().enumerate().take(6).skip(1) {
            assert!(count > 0, "no {s}-star ratings generated");
        }
        // 3 should dominate (centered model).
        assert!(hist[3] > hist[1] && hist[3] > hist[5]);
    }

    #[test]
    fn item_user_matrix_respects_threshold() {
        let ml = generate(2000, 0.1, 4);
        let m = ml.item_user_matrix(4);
        let likes = ml.train().iter().filter(|r| r.stars >= 4).count();
        let ones = m.iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, likes);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(1000, 0.1, 9), generate(1000, 0.1, 9));
    }

    #[test]
    fn no_duplicate_user_item_pairs() {
        let ml = generate(4000, 0.25, 5);
        let mut seen = std::collections::HashSet::new();
        for r in ml.train().iter().chain(ml.test()) {
            assert!(seen.insert((r.user, r.item)), "duplicate rating");
        }
    }
}
