//! The KMNIST-like synthetic dataset: 28×28 kana-style glyphs — curvier,
//! hook-heavy stroke patterns distinct from the digit set.

use std::f64::consts::PI;

use crate::glyph::{generate_glyph_dataset, Glyph, Stroke};
use crate::ImageDataset;

fn line(from: (f64, f64), to: (f64, f64)) -> Stroke {
    Stroke::Line { from, to }
}

fn arc(center: (f64, f64), radii: (f64, f64), a0: f64, a1: f64) -> Stroke {
    Stroke::Arc {
        center,
        radii,
        a0,
        a1,
    }
}

fn dot(at: (f64, f64)) -> Stroke {
    Stroke::Dot { at, r: 0.05 }
}

/// Ten kana-style glyph templates (stylized お/き/す/つ/な/は/ま/や/れ/を
/// stroke skeletons).
pub fn templates() -> Vec<Glyph> {
    let t = 0.045;
    vec![
        // o: cross with lower loop
        Glyph::new(
            vec![
                line((0.3, 0.3), (0.75, 0.3)),
                line((0.5, 0.12), (0.5, 0.6)),
                arc((0.5, 0.68), (0.18, 0.16), 0.7 * PI, 2.4 * PI),
            ],
            t,
        ),
        // ki: two bars, diagonal, lower hook
        Glyph::new(
            vec![
                line((0.3, 0.25), (0.72, 0.2)),
                line((0.28, 0.42), (0.74, 0.37)),
                line((0.55, 0.1), (0.42, 0.62)),
                arc((0.5, 0.72), (0.15, 0.13), 1.6 * PI, 2.9 * PI),
            ],
            t,
        ),
        // su: bar with loop-tail
        Glyph::new(
            vec![
                line((0.28, 0.3), (0.76, 0.3)),
                line((0.55, 0.12), (0.52, 0.5)),
                arc((0.47, 0.6), (0.12, 0.11), 1.7 * PI, 3.4 * PI),
                line((0.42, 0.68), (0.38, 0.88)),
            ],
            t,
        ),
        // tsu: wide open bowl
        Glyph::new(vec![arc((0.5, 0.35), (0.3, 0.35), 0.15 * PI, 0.95 * PI)], t),
        // na: cross, dot, lower hook
        Glyph::new(
            vec![
                line((0.26, 0.28), (0.6, 0.24)),
                line((0.42, 0.1), (0.36, 0.5)),
                dot((0.72, 0.34)),
                line((0.62, 0.5), (0.58, 0.8)),
                arc((0.5, 0.74), (0.13, 0.12), 1.8 * PI, 2.9 * PI),
            ],
            t,
        ),
        // ha: two verticals bridged, right loop
        Glyph::new(
            vec![
                line((0.3, 0.15), (0.3, 0.85)),
                line((0.66, 0.12), (0.66, 0.66)),
                line((0.3, 0.38), (0.66, 0.34)),
                arc((0.6, 0.74), (0.14, 0.12), 1.4 * PI, 3.1 * PI),
            ],
            t,
        ),
        // ma: two bars, center stem, loop
        Glyph::new(
            vec![
                line((0.3, 0.22), (0.72, 0.22)),
                line((0.3, 0.4), (0.72, 0.4)),
                line((0.52, 0.1), (0.52, 0.62)),
                arc((0.48, 0.72), (0.15, 0.12), 0.3 * PI, 2.0 * PI),
            ],
            t,
        ),
        // ya: loop with crossing diagonal
        Glyph::new(
            vec![
                arc((0.42, 0.4), (0.2, 0.15), 0.6 * PI, 2.6 * PI),
                line((0.62, 0.2), (0.5, 0.88)),
                line((0.26, 0.24), (0.36, 0.36)),
            ],
            t,
        ),
        // re: vertical with wave tail
        Glyph::new(
            vec![
                line((0.32, 0.12), (0.32, 0.85)),
                arc((0.52, 0.45), (0.17, 0.2), 1.1 * PI, 2.2 * PI),
                line((0.66, 0.52), (0.72, 0.85)),
            ],
            t,
        ),
        // wo: layered arcs with stem
        Glyph::new(
            vec![
                line((0.3, 0.2), (0.72, 0.2)),
                arc((0.48, 0.45), (0.2, 0.15), 0.9 * PI, 2.1 * PI),
                arc((0.52, 0.68), (0.2, 0.16), 1.3 * PI, 2.6 * PI),
            ],
            t,
        ),
    ]
}

/// Generates `total` KMNIST-like samples (classes balanced, cycling).
pub fn generate(total: usize, seed: u64) -> ImageDataset {
    generate_glyph_dataset("kmnist-like", &templates(), total, seed, 28, 28, 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_templates_distinct_from_digits() {
        let kana = templates();
        assert_eq!(kana.len(), 10);
        let digits = crate::digits::templates();
        let id = crate::Affine::identity();
        for (i, k) in kana.iter().enumerate() {
            let kr = k.render(28, 28, &id);
            for (j, d) in digits.iter().enumerate() {
                let dr = d.render(28, 28, &id);
                let diff: f64 = kr.iter().zip(dr.iter()).map(|(a, b)| (a - b).abs()).sum();
                assert!(diff > 8.0, "kana {i} too close to digit {j}");
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        assert_eq!(generate(30, 11), generate(30, 11));
    }

    #[test]
    fn balanced_classes() {
        let ds = generate(40, 2);
        let mut counts = [0usize; 10];
        for &l in ds.labels() {
            counts[l] += 1;
        }
        assert_eq!(counts, [4; 10]);
    }
}
