//! The CIFAR-10-like synthetic dataset: 32×32×3 color images of simple
//! object/texture compositions, 10 classes. Downstream these feed the
//! conv-RBM patch pipeline (108-dim 6×6×3 patches per Table 1).

use rand::Rng;
use rand::SeedableRng;

use crate::{Canvas, ImageDataset};

const SIZE: usize = 32;

/// Class names, index-aligned with the labels.
pub const CLASS_NAMES: [&str; 10] = [
    "sky-disc",
    "wheels",
    "stripes-h",
    "stripes-v",
    "checker",
    "rings",
    "blobs",
    "cross",
    "gradient",
    "triangles",
];

/// Per-class color palette `(background, foreground)` in RGB.
fn palette(label: usize) -> ([f64; 3], [f64; 3]) {
    match label {
        0 => ([0.55, 0.75, 0.95], [0.85, 0.85, 0.85]), // sky + light object
        1 => ([0.6, 0.6, 0.62], [0.85, 0.2, 0.15]),    // road + red body
        2 => ([0.2, 0.45, 0.2], [0.9, 0.85, 0.3]),     // green + yellow
        3 => ([0.5, 0.3, 0.55], [0.95, 0.95, 0.9]),    // purple + white
        4 => ([0.15, 0.15, 0.2], [0.9, 0.5, 0.1]),     // dark + orange
        5 => ([0.75, 0.7, 0.6], [0.3, 0.25, 0.55]),    // sand + indigo
        6 => ([0.1, 0.35, 0.45], [0.6, 0.9, 0.5]),     // teal + lime
        7 => ([0.8, 0.45, 0.45], [0.2, 0.2, 0.6]),     // rose + navy
        8 => ([0.3, 0.3, 0.3], [0.95, 0.8, 0.75]),     // gray + cream
        9 => ([0.85, 0.85, 0.55], [0.5, 0.15, 0.2]),   // pale + maroon
        _ => unreachable!("label must be < 10"),
    }
}

/// Draws the class structure into a grayscale mask canvas.
fn render_mask<R: Rng + ?Sized>(label: usize, rng: &mut R, c: &mut Canvas) {
    let w = SIZE as f64;
    let jx = rng.random_range(-2.0..=2.0);
    let jy = rng.random_range(-2.0..=2.0);
    let s = rng.random_range(0.85..=1.15);
    match label {
        0 => c.fill_ellipse(16.0 + jx, 14.0 + jy, 9.0 * s, 6.0 * s, 1.0),
        1 => {
            c.fill_rect(6.0 + jx, 14.0 + jy, 26.0 + jx, 22.0 + jy, 1.0);
            c.fill_ellipse(11.0 + jx, 24.0 + jy, 3.0 * s, 3.0 * s, 1.0);
            c.fill_ellipse(21.0 + jx, 24.0 + jy, 3.0 * s, 3.0 * s, 1.0);
        }
        2 => {
            let period = (4.0 * s).max(2.0);
            let mut y = 2.0 + jy.abs();
            while y < w {
                c.fill_rect(0.0, y, w, y + period / 2.0, 1.0);
                y += period;
            }
        }
        3 => {
            let period = (4.0 * s).max(2.0);
            let mut x = 2.0 + jx.abs();
            while x < w {
                c.fill_rect(x, 0.0, x + period / 2.0, w, 1.0);
                x += period;
            }
        }
        4 => {
            let cell = (5.0 * s).max(3.0);
            for by in 0..(SIZE / cell as usize + 1) {
                for bx in 0..(SIZE / cell as usize + 1) {
                    if (bx + by) % 2 == 0 {
                        let x0 = bx as f64 * cell + jx;
                        let y0 = by as f64 * cell + jy;
                        c.fill_rect(x0, y0, x0 + cell, y0 + cell, 1.0);
                    }
                }
            }
        }
        5 => {
            for r in [4.0, 8.0, 12.0] {
                c.arc(
                    16.0 + jx,
                    16.0 + jy,
                    r * s,
                    r * s,
                    0.0,
                    std::f64::consts::TAU,
                    1.0,
                );
            }
        }
        6 => {
            for _ in 0..6 {
                let bx = rng.random_range(4.0..28.0);
                let by = rng.random_range(4.0..28.0);
                c.fill_ellipse(bx, by, 3.5 * s, 3.0 * s, 1.0);
            }
        }
        7 => {
            c.fill_rect(14.0 + jx, 4.0 + jy, 18.0 + jx, 28.0 + jy, 1.0);
            c.fill_rect(4.0 + jx, 14.0 + jy, 28.0 + jx, 18.0 + jy, 1.0);
        }
        8 => {
            for y in 0..SIZE {
                let v = y as f64 / w;
                c.fill_rect(0.0, y as f64, w, y as f64 + 1.0, v);
            }
        }
        9 => {
            for k in 0..3 {
                let cx = 8.0 + k as f64 * 8.0 + jx;
                let cy = 20.0 + jy;
                c.line((cx - 4.0, cy), (cx, cy - 8.0 * s), 0.9);
                c.line((cx, cy - 8.0 * s), (cx + 4.0, cy), 0.9);
                c.line((cx - 4.0, cy), (cx + 4.0, cy), 0.9);
            }
        }
        _ => unreachable!("label must be < 10"),
    }
}

/// Generates `total` CIFAR-like samples (32×32×3, classes balanced).
pub fn generate(total: usize, seed: u64) -> ImageDataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pixel_len = SIZE * SIZE * 3;
    let mut images = ndarray::Array2::zeros((total, pixel_len));
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let label = i % 10;
        let (bg, fg) = palette(label);
        let mut mask = Canvas::new(SIZE, SIZE);
        render_mask(label, &mut rng, &mut mask);
        let mut row = images.row_mut(i);
        for y in 0..SIZE {
            for x in 0..SIZE {
                let m = mask.get(x, y);
                for ch in 0..3 {
                    let base = bg[ch] * (1.0 - m) + fg[ch] * m;
                    let noisy = (base + rng.random_range(-0.05..=0.05)).clamp(0.0, 1.0);
                    row[(y * SIZE + x) * 3 + ch] = noisy;
                }
            }
        }
        labels.push(label);
    }
    ImageDataset::new("cifar-like", images, labels, SIZE, SIZE, 3, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_table1_pipeline() {
        let ds = generate(10, 1);
        assert_eq!(ds.pixel_len(), 3072);
        assert_eq!(ds.channels(), 3);
        // 6x6x3 patches must be 108-dim, matching the 108-1024 RBM.
        assert_eq!(6 * 6 * ds.channels(), 108);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(12, 9), generate(12, 9));
    }

    #[test]
    fn palettes_are_class_distinct() {
        let ds = generate(10, 2);
        // Mean color differs across classes.
        let mut means = Vec::new();
        for row in ds.images().rows() {
            means.push(row.mean().unwrap());
        }
        let distinct: std::collections::BTreeSet<i64> =
            means.iter().map(|m| (m * 1000.0) as i64).collect();
        assert!(distinct.len() >= 7, "class colors too similar");
    }

    #[test]
    fn pixels_in_unit_range() {
        let ds = generate(5, 3);
        assert!(ds.images().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
