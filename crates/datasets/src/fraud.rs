//! The credit-card-fraud-like synthetic dataset: 28 features (the real
//! dataset's PCA-transformed V1–V28), a heavily imbalanced minority class,
//! and quantile binarization for the 28-10 RBM of Table 1.

use ndarray::Array2;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Feature dimensionality (matches the real dataset's 28 PCA components).
pub const FEATURES: usize = 28;

/// The generated dataset: continuous features, binarized features, labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FraudDataset {
    features: Array2<f64>,
    binary: Array2<f64>,
    labels: Vec<bool>,
}

impl FraudDataset {
    /// Continuous feature matrix `(samples × 28)`.
    pub fn features(&self) -> &Array2<f64> {
        &self.features
    }

    /// Median-binarized features (the RBM's visible units).
    pub fn binary(&self) -> &Array2<f64> {
        &self.binary
    }

    /// `true` = fraudulent.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of fraudulent samples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// The binarized rows of the *normal* class only — RBM anomaly
    /// detection trains on legitimate transactions and scores outliers by
    /// free energy.
    pub fn normal_binary(&self) -> Array2<f64> {
        let rows: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (!l).then_some(i))
            .collect();
        let mut out = Array2::zeros((rows.len(), FEATURES));
        for (new_i, &old_i) in rows.iter().enumerate() {
            out.row_mut(new_i).assign(&self.binary.row(old_i));
        }
        out
    }
}

/// Generates `total` transactions with the given fraud rate.
///
/// Legitimate transactions follow a correlated Gaussian (3 latent
/// factors); fraud shifts a subset of feature dimensions and inflates
/// their variance — the displaced minority mode the detector must find.
///
/// # Panics
///
/// Panics unless `0 < fraud_rate < 0.5` and `total ≥ 10`.
pub fn generate(total: usize, fraud_rate: f64, seed: u64) -> FraudDataset {
    assert!(total >= 10, "need at least 10 samples");
    assert!(
        fraud_rate > 0.0 && fraud_rate < 0.5,
        "fraud rate must be in (0, 0.5)"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let normal = Normal::new(0.0, 1.0).expect("unit normal");

    // Random loading matrix mapping 3 latent factors to 28 features.
    let loadings: Vec<[f64; 3]> = (0..FEATURES)
        .map(|_| {
            [
                normal.sample(&mut rng) * 0.7,
                normal.sample(&mut rng) * 0.7,
                normal.sample(&mut rng) * 0.7,
            ]
        })
        .collect();
    // Fraud signature: which dimensions shift, and by how much.
    // Strong displacement on a third of the dimensions, moderate on the
    // rest — tuned so free-energy detection lands near the real dataset's
    // operating point (paper AUC ≈ 0.96).
    let shift: Vec<f64> = (0..FEATURES)
        .map(|d| if d % 3 == 0 { 3.4 } else { 1.1 } * if d % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    let mut features = Array2::zeros((total, FEATURES));
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let is_fraud = rng.random::<f64>() < fraud_rate;
        let f = [
            normal.sample(&mut rng),
            normal.sample(&mut rng),
            normal.sample(&mut rng),
        ];
        for d in 0..FEATURES {
            let base: f64 = loadings[d].iter().zip(&f).map(|(l, x)| l * x).sum();
            let idiosyncratic = normal.sample(&mut rng) * 0.5;
            let mut v = base + idiosyncratic;
            if is_fraud {
                v = v * 1.4 + shift[d];
            }
            features[[i, d]] = v;
        }
        labels.push(is_fraud);
    }

    // Median binarization per feature.
    let mut binary = Array2::zeros((total, FEATURES));
    for d in 0..FEATURES {
        let mut col: Vec<f64> = features.column(d).to_vec();
        col.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = col[total / 2];
        for i in 0..total {
            binary[[i, d]] = if features[[i, d]] > median { 1.0 } else { 0.0 };
        }
    }

    FraudDataset {
        features,
        binary,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_matches_rate() {
        let ds = generate(20000, 0.006, 1);
        let rate = ds.positives() as f64 / ds.len() as f64;
        assert!((rate - 0.006).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn binary_features_are_binary_and_balanced() {
        let ds = generate(2000, 0.01, 2);
        assert!(ds.binary().iter().all(|&x| x == 0.0 || x == 1.0));
        // Median binarization gives ~50% ones per column.
        for d in 0..FEATURES {
            let ones = ds.binary().column(d).sum() / ds.len() as f64;
            assert!((ones - 0.5).abs() < 0.05, "feature {d} fraction {ones}");
        }
    }

    #[test]
    fn fraud_is_displaced_in_feature_space() {
        let ds = generate(8000, 0.05, 3);
        // Mean of shifted dimension 0 differs strongly between classes.
        let mut fraud_mean = 0.0;
        let mut normal_mean = 0.0;
        let (mut nf, mut nn) = (0.0, 0.0);
        for (i, &l) in ds.labels().iter().enumerate() {
            if l {
                fraud_mean += ds.features()[[i, 0]];
                nf += 1.0;
            } else {
                normal_mean += ds.features()[[i, 0]];
                nn += 1.0;
            }
        }
        fraud_mean /= nf;
        normal_mean /= nn;
        assert!(
            (fraud_mean - normal_mean).abs() > 1.0,
            "classes not separated: {fraud_mean} vs {normal_mean}"
        );
    }

    #[test]
    fn normal_subset_excludes_fraud() {
        let ds = generate(5000, 0.05, 4);
        let normal = ds.normal_binary();
        assert_eq!(normal.nrows(), ds.len() - ds.positives());
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(500, 0.05, 8), generate(500, 0.05, 8));
    }
}
