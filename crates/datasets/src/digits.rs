//! The MNIST-like synthetic dataset: 28×28 stroke-rendered digits 0–9 with
//! affine jitter and pixel flip noise.

use std::f64::consts::{PI, TAU};

use crate::glyph::{generate_glyph_dataset, Glyph, Stroke};
use crate::ImageDataset;

fn line(from: (f64, f64), to: (f64, f64)) -> Stroke {
    Stroke::Line { from, to }
}

fn arc(center: (f64, f64), radii: (f64, f64), a0: f64, a1: f64) -> Stroke {
    Stroke::Arc {
        center,
        radii,
        a0,
        a1,
    }
}

/// The ten digit glyph templates (index = digit).
pub fn templates() -> Vec<Glyph> {
    let t = 0.045;
    vec![
        // 0 — oval ring
        Glyph::new(vec![arc((0.5, 0.5), (0.22, 0.32), 0.0, TAU)], t),
        // 1 — vertical bar with flag
        Glyph::new(
            vec![
                line((0.52, 0.14), (0.52, 0.86)),
                line((0.38, 0.3), (0.52, 0.14)),
            ],
            t,
        ),
        // 2 — top bow, diagonal, base
        Glyph::new(
            vec![
                arc((0.5, 0.33), (0.2, 0.18), PI, TAU),
                line((0.7, 0.38), (0.3, 0.84)),
                line((0.3, 0.84), (0.73, 0.84)),
            ],
            t,
        ),
        // 3 — two right-opening bows
        Glyph::new(
            vec![
                arc((0.45, 0.33), (0.2, 0.18), 1.2 * PI, 2.5 * PI),
                arc((0.45, 0.67), (0.21, 0.19), 1.5 * PI, 2.8 * PI),
            ],
            t,
        ),
        // 4 — open four
        Glyph::new(
            vec![
                line((0.62, 0.14), (0.62, 0.86)),
                line((0.62, 0.14), (0.28, 0.58)),
                line((0.28, 0.58), (0.76, 0.58)),
            ],
            t,
        ),
        // 5 — cap, stem, bowl
        Glyph::new(
            vec![
                line((0.7, 0.15), (0.36, 0.15)),
                line((0.36, 0.15), (0.35, 0.45)),
                arc((0.47, 0.64), (0.22, 0.2), 1.45 * PI, 2.85 * PI),
            ],
            t,
        ),
        // 6 — stem into lower loop
        Glyph::new(
            vec![
                line((0.6, 0.14), (0.4, 0.52)),
                arc((0.48, 0.64), (0.18, 0.19), 0.0, TAU),
            ],
            t,
        ),
        // 7 — cap and diagonal
        Glyph::new(
            vec![
                line((0.3, 0.15), (0.72, 0.15)),
                line((0.72, 0.15), (0.42, 0.85)),
            ],
            t,
        ),
        // 8 — stacked rings
        Glyph::new(
            vec![
                arc((0.5, 0.32), (0.16, 0.15), 0.0, TAU),
                arc((0.5, 0.66), (0.19, 0.17), 0.0, TAU),
            ],
            t,
        ),
        // 9 — upper ring with tail
        Glyph::new(
            vec![
                arc((0.5, 0.35), (0.17, 0.17), 0.0, TAU),
                line((0.67, 0.38), (0.6, 0.86)),
            ],
            t,
        ),
    ]
}

/// Generates `total` MNIST-like samples (classes balanced, cycling).
pub fn generate(total: usize, seed: u64) -> ImageDataset {
    generate_glyph_dataset("mnist-like", &templates(), total, seed, 28, 28, 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_templates() {
        let ts = templates();
        assert_eq!(ts.len(), 10);
        // Every pair of rendered templates must differ.
        let rendered: Vec<_> = ts
            .iter()
            .map(|g| g.render(28, 28, &crate::Affine::identity()))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let diff: f64 = rendered[i]
                    .iter()
                    .zip(rendered[j].iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 10.0, "templates {i} and {j} too similar");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_balanced() {
        let a = generate(50, 7);
        let b = generate(50, 7);
        assert_eq!(a, b);
        let mut counts = [0usize; 10];
        for &l in a.labels() {
            counts[l] += 1;
        }
        assert_eq!(counts, [5; 10]);
    }

    #[test]
    fn images_have_ink_and_unit_range() {
        let ds = generate(20, 1);
        for row in ds.images().rows() {
            let total: f64 = row.sum();
            assert!(total > 5.0, "image nearly blank");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn same_class_varies_across_samples() {
        let ds = generate(40, 3);
        // Samples 0 and 10 are both class 0 but jittered differently.
        let a = ds.images().row(0);
        let b = ds.images().row(10);
        assert_eq!(ds.labels()[0], ds.labels()[10]);
        let diff: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "jitter should vary samples");
    }
}
