use ndarray::Array1;

/// A tiny grayscale software rasterizer used by all glyph/shape generators.
///
/// Coordinates are in pixels with `(0, 0)` the top-left corner; intensities
/// accumulate and saturate at 1.0.
///
/// # Example
///
/// ```
/// use ember_datasets::Canvas;
///
/// let mut c = Canvas::new(8, 8);
/// c.line((1.0, 1.0), (6.0, 6.0), 0.8);
/// assert!(c.get(3, 3) > 0.0);
/// assert_eq!(c.get(0, 7), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Canvas {
    /// A black canvas of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        Canvas {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Intensity at `(x, y)`; out-of-bounds reads return 0.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x]
        } else {
            0.0
        }
    }

    /// Adds intensity at `(x, y)`, saturating at 1; out-of-bounds writes
    /// are ignored (shapes may jitter off the edge).
    pub fn add(&mut self, x: isize, y: isize, v: f64) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            let p = &mut self.pixels[y as usize * self.width + x as usize];
            *p = (*p + v).min(1.0);
        }
    }

    /// Stamps a filled antialiased-ish disk of radius `r` at `(cx, cy)`.
    pub fn disk(&mut self, cx: f64, cy: f64, r: f64, v: f64) {
        let x0 = (cx - r - 1.0).floor() as isize;
        let x1 = (cx + r + 1.0).ceil() as isize;
        let y0 = (cy - r - 1.0).floor() as isize;
        let y1 = (cy + r + 1.0).ceil() as isize;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let dx = x as f64 + 0.5 - cx;
                let dy = y as f64 + 0.5 - cy;
                let d = (dx * dx + dy * dy).sqrt();
                if d <= r {
                    self.add(x, y, v);
                } else if d <= r + 0.7 {
                    self.add(x, y, v * (r + 0.7 - d) / 0.7);
                }
            }
        }
    }

    /// Draws a thick line segment by stamping disks along it.
    pub fn line(&mut self, from: (f64, f64), to: (f64, f64), thickness: f64) {
        let dx = to.0 - from.0;
        let dy = to.1 - from.1;
        let len = (dx * dx + dy * dy).sqrt().max(1e-9);
        let steps = (len / 0.3).ceil() as usize;
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            self.disk(from.0 + t * dx, from.1 + t * dy, thickness, 1.0);
        }
    }

    /// Draws an elliptical arc from angle `a0` to `a1` (radians, standard
    /// orientation) centered at `(cx, cy)` with radii `(rx, ry)`.
    #[allow(clippy::too_many_arguments)]
    pub fn arc(&mut self, cx: f64, cy: f64, rx: f64, ry: f64, a0: f64, a1: f64, thickness: f64) {
        let span = (a1 - a0).abs();
        let steps = ((span * rx.max(ry)) / 0.3).ceil().max(4.0) as usize;
        for s in 0..=steps {
            let t = a0 + (a1 - a0) * s as f64 / steps as f64;
            self.disk(cx + rx * t.cos(), cy + ry * t.sin(), thickness, 1.0);
        }
    }

    /// Fills an axis-aligned rectangle.
    pub fn fill_rect(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, v: f64) {
        let (xa, xb) = (x0.min(x1), x0.max(x1));
        let (ya, yb) = (y0.min(y1), y0.max(y1));
        for y in ya.floor() as isize..=yb.ceil() as isize {
            for x in xa.floor() as isize..=xb.ceil() as isize {
                let px = x as f64 + 0.5;
                let py = y as f64 + 0.5;
                if px >= xa && px <= xb && py >= ya && py <= yb {
                    self.add(x, y, v);
                }
            }
        }
    }

    /// Fills an axis-aligned ellipse.
    pub fn fill_ellipse(&mut self, cx: f64, cy: f64, rx: f64, ry: f64, v: f64) {
        for y in (cy - ry).floor() as isize..=(cy + ry).ceil() as isize {
            for x in (cx - rx).floor() as isize..=(cx + rx).ceil() as isize {
                let nx = (x as f64 + 0.5 - cx) / rx.max(1e-9);
                let ny = (y as f64 + 0.5 - cy) / ry.max(1e-9);
                if nx * nx + ny * ny <= 1.0 {
                    self.add(x, y, v);
                }
            }
        }
    }

    /// Flattens to a row vector (row-major).
    pub fn to_array(&self) -> Array1<f64> {
        Array1::from_vec(self.pixels.clone())
    }

    /// Total ink on the canvas.
    pub fn total_intensity(&self) -> f64 {
        self.pixels.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_canvas_is_zero() {
        let c = Canvas::new(5, 4);
        assert_eq!(c.total_intensity(), 0.0);
        assert_eq!(c.to_array().len(), 20);
    }

    #[test]
    fn disk_stamps_center() {
        let mut c = Canvas::new(9, 9);
        c.disk(4.5, 4.5, 2.0, 1.0);
        assert!(c.get(4, 4) > 0.9);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut c = Canvas::new(10, 10);
        c.line((1.0, 5.0), (8.0, 5.0), 0.8);
        for x in 1..=8 {
            assert!(c.get(x, 5) > 0.5, "gap at x={x}");
        }
        assert_eq!(c.get(5, 0), 0.0);
    }

    #[test]
    fn out_of_bounds_ignored() {
        let mut c = Canvas::new(4, 4);
        c.disk(-10.0, -10.0, 2.0, 1.0);
        c.line((-5.0, -5.0), (-1.0, -1.0), 1.0);
        assert!(c.total_intensity() < 1.0);
    }

    #[test]
    fn saturation_at_one() {
        let mut c = Canvas::new(3, 3);
        for _ in 0..10 {
            c.disk(1.5, 1.5, 1.0, 1.0);
        }
        assert!(c.get(1, 1) <= 1.0);
    }

    #[test]
    fn fill_rect_covers_interior() {
        let mut c = Canvas::new(8, 8);
        c.fill_rect(2.0, 2.0, 5.0, 5.0, 1.0);
        assert!(c.get(3, 3) > 0.9);
        assert_eq!(c.get(6, 6), 0.0);
    }

    #[test]
    fn fill_ellipse_covers_center_not_corner() {
        let mut c = Canvas::new(10, 10);
        c.fill_ellipse(5.0, 5.0, 3.0, 2.0, 1.0);
        assert!(c.get(5, 5) > 0.9);
        assert_eq!(c.get(8, 8), 0.0);
    }

    #[test]
    fn arc_traces_circle() {
        let mut c = Canvas::new(16, 16);
        c.arc(8.0, 8.0, 5.0, 5.0, 0.0, std::f64::consts::TAU, 0.8);
        // Points on the circle get ink; the center stays dark.
        assert!(c.get(13, 8) > 0.3);
        assert!(c.get(8, 13) > 0.3);
        assert_eq!(c.get(8, 8), 0.0);
    }
}
