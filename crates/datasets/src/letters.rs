//! The EMNIST-letters-like synthetic dataset: 28×28 stick-letter glyphs
//! A–Z (26 classes).

use std::f64::consts::{PI, TAU};

use crate::glyph::{generate_glyph_dataset, Glyph, Stroke};
use crate::ImageDataset;

fn line(from: (f64, f64), to: (f64, f64)) -> Stroke {
    Stroke::Line { from, to }
}

fn arc(center: (f64, f64), radii: (f64, f64), a0: f64, a1: f64) -> Stroke {
    Stroke::Arc {
        center,
        radii,
        a0,
        a1,
    }
}

/// The 26 letter glyph templates (index 0 = 'A').
pub fn templates() -> Vec<Glyph> {
    let t = 0.045;
    // Common anchor points.
    let top = 0.15;
    let bot = 0.85;
    let mid = 0.5;
    let l = 0.3;
    let r = 0.7;
    let c = 0.5;
    vec![
        // A
        Glyph::new(
            vec![
                line((l, bot), (c, top)),
                line((c, top), (r, bot)),
                line((0.38, 0.58), (0.62, 0.58)),
            ],
            t,
        ),
        // B
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                arc((l, 0.32), (0.22, 0.17), 1.5 * PI, 2.5 * PI),
                arc((l, 0.67), (0.25, 0.18), 1.5 * PI, 2.5 * PI),
            ],
            t,
        ),
        // C
        Glyph::new(vec![arc((0.55, mid), (0.25, 0.33), 0.6 * PI, 1.9 * PI)], t),
        // D
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                arc((l, mid), (0.32, 0.35), 1.5 * PI, 2.5 * PI),
            ],
            t,
        ),
        // E
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                line((l, top), (r, top)),
                line((l, mid), (0.62, mid)),
                line((l, bot), (r, bot)),
            ],
            t,
        ),
        // F
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                line((l, top), (r, top)),
                line((l, mid), (0.62, mid)),
            ],
            t,
        ),
        // G
        Glyph::new(
            vec![
                arc((0.55, mid), (0.25, 0.33), 0.6 * PI, 2.0 * PI),
                line((0.78, mid), (0.58, mid)),
                line((0.78, mid), (0.78, 0.7)),
            ],
            t,
        ),
        // H
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                line((r, top), (r, bot)),
                line((l, mid), (r, mid)),
            ],
            t,
        ),
        // I
        Glyph::new(
            vec![
                line((c, top), (c, bot)),
                line((0.38, top), (0.62, top)),
                line((0.38, bot), (0.62, bot)),
            ],
            t,
        ),
        // J
        Glyph::new(
            vec![
                line((0.6, top), (0.6, 0.65)),
                arc((0.45, 0.65), (0.15, 0.18), 0.0, PI),
            ],
            t,
        ),
        // K
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                line((r, top), (l, mid)),
                line((l, mid), (r, bot)),
            ],
            t,
        ),
        // L
        Glyph::new(vec![line((l, top), (l, bot)), line((l, bot), (r, bot))], t),
        // M
        Glyph::new(
            vec![
                line((0.25, bot), (0.25, top)),
                line((0.25, top), (c, 0.55)),
                line((c, 0.55), (0.75, top)),
                line((0.75, top), (0.75, bot)),
            ],
            t,
        ),
        // N
        Glyph::new(
            vec![
                line((l, bot), (l, top)),
                line((l, top), (r, bot)),
                line((r, bot), (r, top)),
            ],
            t,
        ),
        // O
        Glyph::new(vec![arc((c, mid), (0.24, 0.33), 0.0, TAU)], t),
        // P
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                arc((l, 0.33), (0.24, 0.18), 1.5 * PI, 2.5 * PI),
            ],
            t,
        ),
        // Q
        Glyph::new(
            vec![
                arc((c, mid), (0.24, 0.33), 0.0, TAU),
                line((0.58, 0.68), (0.78, 0.88)),
            ],
            t,
        ),
        // R
        Glyph::new(
            vec![
                line((l, top), (l, bot)),
                arc((l, 0.33), (0.24, 0.18), 1.5 * PI, 2.5 * PI),
                line((0.42, 0.5), (r, bot)),
            ],
            t,
        ),
        // S
        Glyph::new(
            vec![
                arc((0.5, 0.32), (0.2, 0.17), 1.9 * PI, 0.7 * PI),
                arc((0.5, 0.67), (0.2, 0.17), 0.9 * PI, 2.6 * PI),
            ],
            t,
        ),
        // T
        Glyph::new(
            vec![line((0.25, top), (0.75, top)), line((c, top), (c, bot))],
            t,
        ),
        // U
        Glyph::new(
            vec![
                line((l, top), (l, 0.6)),
                arc((c, 0.6), (0.2, 0.25), PI, TAU),
                line((r, 0.6), (r, top)),
            ],
            t,
        ),
        // V
        Glyph::new(vec![line((l, top), (c, bot)), line((c, bot), (r, top))], t),
        // W
        Glyph::new(
            vec![
                line((0.22, top), (0.36, bot)),
                line((0.36, bot), (c, 0.45)),
                line((c, 0.45), (0.64, bot)),
                line((0.64, bot), (0.78, top)),
            ],
            t,
        ),
        // X
        Glyph::new(vec![line((l, top), (r, bot)), line((r, top), (l, bot))], t),
        // Y
        Glyph::new(
            vec![
                line((l, top), (c, mid)),
                line((r, top), (c, mid)),
                line((c, mid), (c, bot)),
            ],
            t,
        ),
        // Z
        Glyph::new(
            vec![
                line((l, top), (r, top)),
                line((r, top), (l, bot)),
                line((l, bot), (r, bot)),
            ],
            t,
        ),
    ]
}

/// Generates `total` EMNIST-like samples over 26 classes.
pub fn generate(total: usize, seed: u64) -> ImageDataset {
    generate_glyph_dataset("emnist-like", &templates(), total, seed, 28, 28, 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_templates() {
        assert_eq!(templates().len(), 26);
    }

    #[test]
    fn all_render_nonempty() {
        let id = crate::Affine::identity();
        for (i, g) in templates().iter().enumerate() {
            let ink: f64 = g.render(28, 28, &id).sum();
            assert!(ink > 5.0, "letter {i} nearly blank");
        }
    }

    #[test]
    fn pairwise_distinct() {
        let id = crate::Affine::identity();
        let rendered: Vec<_> = templates().iter().map(|g| g.render(28, 28, &id)).collect();
        for i in 0..rendered.len() {
            for j in (i + 1)..rendered.len() {
                let diff: f64 = rendered[i]
                    .iter()
                    .zip(rendered[j].iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 5.0, "letters {i} and {j} too similar");
            }
        }
    }

    #[test]
    fn labels_span_26_classes() {
        let ds = generate(52, 1);
        assert_eq!(ds.classes(), 26);
        let distinct: std::collections::BTreeSet<usize> = ds.labels().iter().copied().collect();
        assert_eq!(distinct.len(), 26);
    }
}
