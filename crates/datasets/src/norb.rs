//! The SmallNORB-like synthetic dataset: 32×32 grayscale renders of five
//! geometric object categories under varying "pose" (scale, rotation) and
//! "lighting" (global intensity) — mirroring SmallNORB's toy-object
//! variation axes. Feeds the 36-dim (6×6) patch RBM of Table 1.

use rand::Rng;
use rand::SeedableRng;

use crate::{Canvas, ImageDataset};

const SIZE: usize = 32;

/// Class names, index-aligned with the labels.
pub const CLASS_NAMES: [&str; 5] = ["ellipsoid", "box", "wedge", "cross", "ring"];

fn render_object<R: Rng + ?Sized>(label: usize, rng: &mut R, c: &mut Canvas) {
    let cx = 16.0 + rng.random_range(-2.0..=2.0);
    let cy = 16.0 + rng.random_range(-2.0..=2.0);
    let s = rng.random_range(0.8..=1.2);
    let rot = rng.random_range(-0.4..=0.4f64);
    let (sin, cos) = rot.sin_cos();
    let rp =
        |dx: f64, dy: f64| -> (f64, f64) { (cx + dx * cos - dy * sin, cy + dx * sin + dy * cos) };
    match label {
        0 => c.fill_ellipse(cx, cy, 9.0 * s, 5.5 * s, 0.9),
        1 => {
            // A rotated box drawn as its four edges plus diagonal fill.
            let corners = [
                rp(-7.0 * s, -5.0 * s),
                rp(7.0 * s, -5.0 * s),
                rp(7.0 * s, 5.0 * s),
                rp(-7.0 * s, 5.0 * s),
            ];
            for k in 0..4 {
                c.line(corners[k], corners[(k + 1) % 4], 1.0);
            }
            for f in 0..10 {
                let t = f as f64 / 9.0;
                let a = (
                    corners[0].0 + (corners[3].0 - corners[0].0) * t,
                    corners[0].1 + (corners[3].1 - corners[0].1) * t,
                );
                let b = (
                    corners[1].0 + (corners[2].0 - corners[1].0) * t,
                    corners[1].1 + (corners[2].1 - corners[1].1) * t,
                );
                c.line(a, b, 0.8);
            }
        }
        2 => {
            // Wedge: filled triangle.
            let a = rp(0.0, -8.0 * s);
            let b = rp(-8.0 * s, 6.0 * s);
            let d = rp(8.0 * s, 6.0 * s);
            for f in 0..=12 {
                let t = f as f64 / 12.0;
                let p = (a.0 + (b.0 - a.0) * t, a.1 + (b.1 - a.1) * t);
                let q = (a.0 + (d.0 - a.0) * t, a.1 + (d.1 - a.1) * t);
                c.line(p, q, 0.9);
            }
        }
        3 => {
            c.line(rp(-9.0 * s, 0.0), rp(9.0 * s, 0.0), 2.0);
            c.line(rp(0.0, -9.0 * s), rp(0.0, 9.0 * s), 2.0);
        }
        4 => c.arc(cx, cy, 8.0 * s, 8.0 * s, 0.0, std::f64::consts::TAU, 1.6),
        _ => unreachable!("label must be < 5"),
    }
}

/// Generates `total` SmallNORB-like samples over 5 classes.
pub fn generate(total: usize, seed: u64) -> ImageDataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut images = ndarray::Array2::zeros((total, SIZE * SIZE));
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let label = i % 5;
        let mut canvas = Canvas::new(SIZE, SIZE);
        render_object(label, &mut rng, &mut canvas);
        let lighting = rng.random_range(0.6..=1.0);
        let mut img = canvas.to_array();
        img.mapv_inplace(|p| ((p * lighting) + rng.random_range(-0.03..=0.03)).clamp(0.0, 1.0));
        images.row_mut(i).assign(&img);
        labels.push(label);
    }
    ImageDataset::new("norb-like", images, labels, SIZE, SIZE, 1, 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_classes_and_patch_geometry() {
        let ds = generate(15, 1);
        assert_eq!(ds.classes(), 5);
        // 6x6 patches are 36-dim, matching the 36-1024 RBM of Table 1.
        assert_eq!(6 * 6 * ds.channels(), 36);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(10, 4), generate(10, 4));
    }

    #[test]
    fn objects_have_ink() {
        let ds = generate(10, 2);
        for (i, row) in ds.images().rows().enumerate() {
            assert!(row.sum() > 5.0, "object {i} nearly blank");
        }
    }

    #[test]
    fn lighting_varies() {
        let ds = generate(20, 3);
        let sums: Vec<f64> = ds.images().rows().map(|r| r.sum()).collect();
        // Same class appears at indices 0,5,10,15 with different lighting.
        let same_class = [sums[0], sums[5], sums[10], sums[15]];
        let min = same_class.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = same_class.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min * 1.05, "lighting variation too small");
    }
}
