use rand::Rng;

use crate::ImageDataset;

/// A train/test partition of an [`ImageDataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSets {
    /// The training portion.
    pub train: ImageDataset,
    /// The held-out test portion.
    pub test: ImageDataset,
}

/// Shuffles and splits a dataset, putting `test_fraction` of the rows in
/// the test set.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1` and both resulting sets are
/// non-empty.
///
/// # Example
///
/// ```
/// use ember_datasets::{digits, train_test_split};
/// use rand::SeedableRng;
///
/// let ds = digits::generate(50, 0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let split = train_test_split(&ds, 0.2, &mut rng);
/// assert_eq!(split.train.len(), 40);
/// assert_eq!(split.test.len(), 10);
/// ```
pub fn train_test_split<R: Rng + ?Sized>(
    dataset: &ImageDataset,
    test_fraction: f64,
    rng: &mut R,
) -> SplitSets {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let shuffled = dataset.shuffled(rng);
    let test_len = ((dataset.len() as f64) * test_fraction).round() as usize;
    let train_len = dataset.len() - test_len;
    assert!(
        train_len > 0 && test_len > 0,
        "split leaves an empty partition"
    );
    SplitSets {
        train: shuffled.slice(0, train_len),
        test: shuffled.slice(train_len, dataset.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn partitions_cover_dataset() {
        let ds = crate::digits::generate(30, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let split = train_test_split(&ds, 0.3, &mut rng);
        assert_eq!(split.train.len() + split.test.len(), 30);
        assert_eq!(split.test.len(), 9);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = crate::digits::generate(20, 3);
        let a = train_test_split(&ds, 0.25, &mut rand::rngs::StdRng::seed_from_u64(7));
        let b = train_test_split(&ds, 0.25, &mut rand::rngs::StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn rejects_bad_fraction() {
        let ds = crate::digits::generate(10, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = train_test_split(&ds, 1.5, &mut rng);
    }
}
