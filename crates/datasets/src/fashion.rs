//! The Fashion-MNIST-like synthetic dataset: 28×28 filled garment
//! silhouettes (10 classes), rendered with canvas fills plus jitter.

use rand::Rng;
use rand::SeedableRng;

use crate::{Canvas, ImageDataset};

/// Class names, index-aligned with the labels.
pub const CLASS_NAMES: [&str; 10] = [
    "tshirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle-boot",
];

/// Renders one silhouette of class `label` with the given jitter
/// parameters (normalized shift and scale).
fn render_class(label: usize, dx: f64, dy: f64, s: f64, canvas: &mut Canvas) {
    let w = canvas.width() as f64;
    // Helper mapping normalized coords -> pixels with jitter.
    let x = |v: f64| (v * s + dx) * w;
    let y = |v: f64| (v * s + dy) * w;
    match label {
        0 => {
            // T-shirt: torso + short sleeves.
            canvas.fill_rect(x(0.33), y(0.3), x(0.67), y(0.82), 0.9);
            canvas.fill_rect(x(0.18), y(0.3), x(0.33), y(0.48), 0.9);
            canvas.fill_rect(x(0.67), y(0.3), x(0.82), y(0.48), 0.9);
        }
        1 => {
            // Trouser: waist + two legs.
            canvas.fill_rect(x(0.33), y(0.18), x(0.67), y(0.34), 0.9);
            canvas.fill_rect(x(0.33), y(0.34), x(0.47), y(0.86), 0.9);
            canvas.fill_rect(x(0.53), y(0.34), x(0.67), y(0.86), 0.9);
        }
        2 => {
            // Pullover: torso + long sleeves.
            canvas.fill_rect(x(0.34), y(0.28), x(0.66), y(0.8), 0.9);
            canvas.fill_rect(x(0.16), y(0.28), x(0.34), y(0.74), 0.9);
            canvas.fill_rect(x(0.66), y(0.28), x(0.84), y(0.74), 0.9);
        }
        3 => {
            // Dress: narrow top widening to a skirt.
            canvas.fill_rect(x(0.4), y(0.2), x(0.6), y(0.45), 0.9);
            for k in 0..8 {
                let f = k as f64 / 7.0;
                canvas.fill_rect(
                    x(0.4 - 0.12 * f),
                    y(0.45 + 0.05 * k as f64),
                    x(0.6 + 0.12 * f),
                    y(0.5 + 0.05 * k as f64),
                    0.9,
                );
            }
        }
        4 => {
            // Coat: long torso halves with a gap + sleeves.
            canvas.fill_rect(x(0.34), y(0.24), x(0.48), y(0.86), 0.9);
            canvas.fill_rect(x(0.52), y(0.24), x(0.66), y(0.86), 0.9);
            canvas.fill_rect(x(0.16), y(0.24), x(0.34), y(0.78), 0.9);
            canvas.fill_rect(x(0.66), y(0.24), x(0.84), y(0.78), 0.9);
        }
        5 => {
            // Sandal: thin sole + straps.
            canvas.fill_rect(x(0.18), y(0.66), x(0.82), y(0.74), 0.9);
            canvas.line((x(0.3), y(0.66)), (x(0.45), y(0.4)), 1.2);
            canvas.line((x(0.45), y(0.4)), (x(0.62), y(0.66)), 1.2);
        }
        6 => {
            // Shirt: torso + sleeves + collar notch.
            canvas.fill_rect(x(0.35), y(0.26), x(0.65), y(0.84), 0.9);
            canvas.fill_rect(x(0.2), y(0.26), x(0.35), y(0.6), 0.9);
            canvas.fill_rect(x(0.65), y(0.26), x(0.8), y(0.6), 0.9);
            canvas.line((x(0.44), y(0.26)), (x(0.5), y(0.36)), 1.0);
            canvas.line((x(0.56), y(0.26)), (x(0.5), y(0.36)), 1.0);
        }
        7 => {
            // Sneaker: low profile with sole.
            canvas.fill_ellipse(x(0.5), y(0.62), 0.3 * s * w, 0.12 * s * w, 0.9);
            canvas.fill_rect(x(0.2), y(0.66), x(0.8), y(0.74), 0.95);
        }
        8 => {
            // Bag: box + handle arc.
            canvas.fill_rect(x(0.28), y(0.42), x(0.72), y(0.8), 0.9);
            canvas.arc(
                x(0.5),
                y(0.42),
                0.14 * s * w,
                0.12 * s * w,
                std::f64::consts::PI,
                std::f64::consts::TAU,
                1.2,
            );
        }
        9 => {
            // Ankle boot: shaft + foot.
            canvas.fill_rect(x(0.34), y(0.28), x(0.52), y(0.74), 0.9);
            canvas.fill_rect(x(0.34), y(0.6), x(0.78), y(0.78), 0.9);
        }
        _ => unreachable!("label must be < 10"),
    }
}

/// Generates `total` FMNIST-like samples (classes balanced, cycling).
pub fn generate(total: usize, seed: u64) -> ImageDataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut images = ndarray::Array2::zeros((total, 28 * 28));
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let label = i % 10;
        let mut canvas = Canvas::new(28, 28);
        let dx = rng.random_range(-0.04..=0.04);
        let dy = rng.random_range(-0.04..=0.04);
        let s = rng.random_range(0.9..=1.1);
        render_class(label, dx, dy, s, &mut canvas);
        let mut img = canvas.to_array();
        // Fabric-texture noise: multiplicative speckle + rare flips.
        img.mapv_inplace(|p| {
            let speckled = p * rng.random_range(0.8..=1.0);
            if rng.random::<f64>() < 0.005 {
                1.0 - speckled
            } else {
                speckled
            }
        });
        images.row_mut(i).assign(&img);
        labels.push(label);
    }
    ImageDataset::new("fmnist-like", images, labels, 28, 28, 1, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_and_deterministic() {
        let a = generate(30, 5);
        assert_eq!(a, generate(30, 5));
        let mut counts = [0usize; 10];
        for &l in a.labels() {
            counts[l] += 1;
        }
        assert_eq!(counts, [3; 10]);
    }

    #[test]
    fn silhouettes_have_mass() {
        let ds = generate(20, 2);
        for (i, row) in ds.images().rows().enumerate() {
            assert!(row.sum() > 20.0, "image {i} nearly blank");
        }
    }

    #[test]
    fn classes_differ_in_shape() {
        // Class-mean images must be pairwise distinct (jitter-robust).
        let ds = generate(100, 3);
        let mut means = vec![vec![0.0f64; 784]; 10];
        let mut counts = [0usize; 10];
        for (row, &label) in ds.images().rows().zip(ds.labels()) {
            for (m, &p) in means[label].iter_mut().zip(row.iter()) {
                *m += p;
            }
            counts[label] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        for i in 0..10 {
            for j in (i + 1)..10 {
                let diff: f64 = means[i]
                    .iter()
                    .zip(&means[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 15.0, "classes {i} and {j} too similar ({diff})");
            }
        }
    }

    #[test]
    fn class_names_count() {
        assert_eq!(CLASS_NAMES.len(), 10);
    }
}
