use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Canvas;

/// One stroke of a glyph, in normalized `[0, 1]²` coordinates
/// (`(0,0)` top-left).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Stroke {
    /// A straight segment.
    Line {
        /// Start point.
        from: (f64, f64),
        /// End point.
        to: (f64, f64),
    },
    /// An elliptical arc from `a0` to `a1` radians.
    Arc {
        /// Ellipse center.
        center: (f64, f64),
        /// Ellipse radii.
        radii: (f64, f64),
        /// Start angle (radians).
        a0: f64,
        /// End angle (radians).
        a1: f64,
    },
    /// A filled dot.
    Dot {
        /// Dot center.
        at: (f64, f64),
        /// Dot radius (normalized units).
        r: f64,
    },
}

/// A random affine jitter: rotation, anisotropic scale and translation
/// about the glyph center — the within-class variability of the synthetic
/// image datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Affine {
    rotation: f64,
    scale_x: f64,
    scale_y: f64,
    dx: f64,
    dy: f64,
}

impl Affine {
    /// The identity transform.
    pub fn identity() -> Self {
        Affine {
            rotation: 0.0,
            scale_x: 1.0,
            scale_y: 1.0,
            dx: 0.0,
            dy: 0.0,
        }
    }

    /// Samples a jitter: rotation `±max_rot` radians, per-axis scale in
    /// `[1−max_scale, 1+max_scale]`, translation `±max_shift` (normalized).
    pub fn sample<R: Rng + ?Sized>(
        max_rot: f64,
        max_scale: f64,
        max_shift: f64,
        rng: &mut R,
    ) -> Self {
        Affine {
            rotation: rng.random_range(-max_rot..=max_rot),
            scale_x: 1.0 + rng.random_range(-max_scale..=max_scale),
            scale_y: 1.0 + rng.random_range(-max_scale..=max_scale),
            dx: rng.random_range(-max_shift..=max_shift),
            dy: rng.random_range(-max_shift..=max_shift),
        }
    }

    /// Applies the transform to a normalized point (rotating about the
    /// glyph center `(0.5, 0.5)`).
    pub fn apply(&self, p: (f64, f64)) -> (f64, f64) {
        let (x, y) = (p.0 - 0.5, p.1 - 0.5);
        let (x, y) = (x * self.scale_x, y * self.scale_y);
        let (s, c) = self.rotation.sin_cos();
        let (x, y) = (x * c - y * s, x * s + y * c);
        (x + 0.5 + self.dx, y + 0.5 + self.dy)
    }

    /// Mean absolute scale factor (used to scale radii).
    pub fn mean_scale(&self) -> f64 {
        (self.scale_x.abs() + self.scale_y.abs()) / 2.0
    }
}

/// A glyph template: a set of strokes plus a nominal line thickness
/// (normalized units).
///
/// # Example
///
/// ```
/// use ember_datasets::{Affine, Glyph, Stroke};
///
/// let glyph = Glyph::new(
///     vec![Stroke::Line { from: (0.5, 0.15), to: (0.5, 0.85) }],
///     0.05,
/// );
/// let img = glyph.render(28, 28, &Affine::identity());
/// assert_eq!(img.len(), 784);
/// assert!(img.iter().sum::<f64>() > 5.0); // some ink landed
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Glyph {
    strokes: Vec<Stroke>,
    thickness: f64,
}

impl Glyph {
    /// Builds a glyph from strokes with the given nominal thickness.
    ///
    /// # Panics
    ///
    /// Panics if `strokes` is empty or thickness is not positive.
    pub fn new(strokes: Vec<Stroke>, thickness: f64) -> Self {
        assert!(!strokes.is_empty(), "a glyph needs at least one stroke");
        assert!(thickness > 0.0, "thickness must be positive");
        Glyph { strokes, thickness }
    }

    /// The stroke list.
    pub fn strokes(&self) -> &[Stroke] {
        &self.strokes
    }

    /// Rasterizes the glyph at `width × height` under an affine jitter,
    /// returning flattened pixels in `[0, 1]`.
    pub fn render(&self, width: usize, height: usize, t: &Affine) -> ndarray::Array1<f64> {
        let mut canvas = Canvas::new(width, height);
        let sx = width as f64;
        let sy = height as f64;
        let px = |p: (f64, f64)| -> (f64, f64) {
            let q = t.apply(p);
            (q.0 * sx, q.1 * sy)
        };
        let thick = self.thickness * sx.min(sy) * t.mean_scale();
        for stroke in &self.strokes {
            match *stroke {
                Stroke::Line { from, to } => {
                    canvas.line(px(from), px(to), thick);
                }
                Stroke::Arc {
                    center,
                    radii,
                    a0,
                    a1,
                } => {
                    // Sample the arc in normalized space so rotation and
                    // anisotropic scaling deform it correctly.
                    let steps = (((a1 - a0).abs() * radii.0.max(radii.1) * sx) / 0.3)
                        .ceil()
                        .max(6.0) as usize;
                    let mut prev: Option<(f64, f64)> = None;
                    for s in 0..=steps {
                        let ang = a0 + (a1 - a0) * s as f64 / steps as f64;
                        let p = (
                            center.0 + radii.0 * ang.cos(),
                            center.1 + radii.1 * ang.sin(),
                        );
                        let q = px(p);
                        if let Some(prev) = prev {
                            canvas.line(prev, q, thick);
                        }
                        prev = Some(q);
                    }
                }
                Stroke::Dot { at, r } => {
                    let q = px(at);
                    canvas.disk(q.0, q.1, r * sx.min(sy) * t.mean_scale(), 1.0);
                }
            }
        }
        canvas.to_array()
    }

    /// Renders with jitter and per-pixel Bernoulli flip noise (probability
    /// `flip_p` per pixel after binarization at 0.5) — one synthetic
    /// "handwritten" sample.
    pub fn render_noisy<R: Rng + ?Sized>(
        &self,
        width: usize,
        height: usize,
        jitter: &Affine,
        flip_p: f64,
        rng: &mut R,
    ) -> ndarray::Array1<f64> {
        let mut img = self.render(width, height, jitter);
        if flip_p > 0.0 {
            img.mapv_inplace(|p| {
                let bit = p > 0.5;
                let flipped = if rng.random::<f64>() < flip_p {
                    !bit
                } else {
                    bit
                };
                if flipped {
                    1.0
                } else {
                    0.0
                }
            });
        }
        img
    }
}

/// Renders a balanced glyph dataset: `total` samples cycling through the
/// class templates, each with sampled affine jitter and pixel flip noise.
/// Shared by the digit/kana/letter generators.
pub(crate) fn generate_glyph_dataset(
    name: &str,
    templates: &[Glyph],
    total: usize,
    seed: u64,
    width: usize,
    height: usize,
    flip_p: f64,
) -> crate::ImageDataset {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let classes = templates.len();
    let mut images = ndarray::Array2::zeros((total, width * height));
    let mut labels = Vec::with_capacity(total);
    for i in 0..total {
        let label = i % classes;
        let jitter = Affine::sample(0.12, 0.1, 0.06, &mut rng);
        let img = templates[label].render_noisy(width, height, &jitter, flip_p, &mut rng);
        images.row_mut(i).assign(&img);
        labels.push(label);
    }
    crate::ImageDataset::new(name, images, labels, height, width, 1, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bar() -> Glyph {
        Glyph::new(
            vec![Stroke::Line {
                from: (0.5, 0.1),
                to: (0.5, 0.9),
            }],
            0.06,
        )
    }

    #[test]
    fn identity_render_is_centered() {
        let img = bar().render(28, 28, &Affine::identity());
        // Ink in the middle column band, none at the far left.
        let at = |x: usize, y: usize| img[y * 28 + x];
        assert!(at(14, 14) > 0.5);
        assert_eq!(at(1, 14), 0.0);
    }

    #[test]
    fn translation_moves_ink() {
        let mut t = Affine::identity();
        t.dx = 0.3;
        let img = bar().render(28, 28, &t);
        let at = |x: usize, y: usize| img[y * 28 + x];
        assert!(at(22, 14) > 0.4);
        assert!(at(14, 14) < 0.3);
    }

    #[test]
    fn rotation_tilts_the_bar() {
        let mut t = Affine::identity();
        t.rotation = std::f64::consts::FRAC_PI_2;
        let img = bar().render(28, 28, &t);
        let at = |x: usize, y: usize| img[y * 28 + x];
        // Now horizontal: ink to the left and right of center.
        assert!(at(5, 14) > 0.4);
        assert!(at(22, 14) > 0.4);
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let t = Affine::sample(0.1, 0.05, 0.08, &mut rng);
            assert!(t.rotation.abs() <= 0.1);
            assert!((t.scale_x - 1.0).abs() <= 0.05);
            assert!(t.dx.abs() <= 0.08);
        }
        let a = Affine::sample(0.1, 0.1, 0.1, &mut rand::rngs::StdRng::seed_from_u64(5));
        let b = Affine::sample(0.1, 0.1, 0.1, &mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn noise_flips_pixels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let clean = bar().render_noisy(28, 28, &Affine::identity(), 0.0, &mut rng);
        let noisy = bar().render_noisy(28, 28, &Affine::identity(), 0.1, &mut rng);
        let clean_bits: usize = clean.iter().filter(|&&p| p > 0.5).count();
        let diff: usize = clean
            .iter()
            .zip(noisy.iter())
            .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
            .count();
        assert!(diff > 30, "expected ~78 flips, saw {diff}");
        assert!(clean_bits > 10);
    }

    #[test]
    fn arc_glyph_renders_ring() {
        let ring = Glyph::new(
            vec![Stroke::Arc {
                center: (0.5, 0.5),
                radii: (0.3, 0.3),
                a0: 0.0,
                a1: std::f64::consts::TAU,
            }],
            0.05,
        );
        let img = ring.render(28, 28, &Affine::identity());
        let at = |x: usize, y: usize| img[y * 28 + x];
        assert!(at(14 + 8, 14) > 0.4);
        assert!(at(14, 14) < 0.1, "ring center should be empty");
    }
}
