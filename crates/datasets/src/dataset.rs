use ndarray::{Array2, Axis};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labeled image dataset with flattened pixels in `[0, 1]`
/// (row-major, channel-last).
///
/// # Example
///
/// ```
/// use ember_datasets::ImageDataset;
/// use ndarray::Array2;
///
/// let ds = ImageDataset::new(
///     "toy",
///     Array2::zeros((4, 6)),
///     vec![0, 1, 0, 1],
///     2, 3, 1, 2,
/// );
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.pixel_len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageDataset {
    name: String,
    images: Array2<f64>,
    labels: Vec<usize>,
    height: usize,
    width: usize,
    channels: usize,
    classes: usize,
}

impl ImageDataset {
    /// Bundles images with their metadata.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not match the pixel count, the label
    /// count differs from the row count, or any label is out of range.
    pub fn new(
        name: &str,
        images: Array2<f64>,
        labels: Vec<usize>,
        height: usize,
        width: usize,
        channels: usize,
        classes: usize,
    ) -> Self {
        assert_eq!(
            images.ncols(),
            height * width * channels,
            "pixel count must match geometry"
        );
        assert_eq!(images.nrows(), labels.len(), "one label per image");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        ImageDataset {
            name: name.to_owned(),
            images,
            labels,
            height,
            width,
            channels,
            classes,
        }
    }

    /// Dataset name (e.g. `"mnist-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `(samples × pixels)` matrix.
    pub fn images(&self) -> &Array2<f64> {
        &self.images
    }

    /// Per-image class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.nrows()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.nrows() == 0
    }

    /// Flattened pixels per image.
    pub fn pixel_len(&self) -> usize {
        self.images.ncols()
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Color channels (1 = grayscale).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of distinct classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// A copy with pixels thresholded to `{0, 1}` at `threshold` — the
    /// binary visible units RBMs expect.
    pub fn binarized(&self, threshold: f64) -> ImageDataset {
        let images = self.images.mapv(|p| if p > threshold { 1.0 } else { 0.0 });
        ImageDataset {
            name: format!("{}-bin", self.name),
            images,
            labels: self.labels.clone(),
            height: self.height,
            width: self.width,
            channels: self.channels,
            classes: self.classes,
        }
    }

    /// A copy with rows shuffled (images and labels kept in sync).
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> ImageDataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        // Fisher–Yates.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut images = Array2::zeros(self.images.dim());
        let mut labels = Vec::with_capacity(self.labels.len());
        for (new_row, &old_row) in order.iter().enumerate() {
            images.row_mut(new_row).assign(&self.images.row(old_row));
            labels.push(self.labels[old_row]);
        }
        ImageDataset {
            name: self.name.clone(),
            images,
            labels,
            height: self.height,
            width: self.width,
            channels: self.channels,
            classes: self.classes,
        }
    }

    /// The subset of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, start: usize, end: usize) -> ImageDataset {
        assert!(start <= end && end <= self.len(), "invalid slice range");
        ImageDataset {
            name: self.name.clone(),
            images: self.images.slice(ndarray::s![start..end, ..]).to_owned(),
            labels: self.labels[start..end].to_vec(),
            height: self.height,
            width: self.width,
            channels: self.channels,
            classes: self.classes,
        }
    }

    /// Mean pixel intensity per class — a quick sanity diagnostic.
    pub fn class_means(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.classes];
        let mut counts = vec![0usize; self.classes];
        for (row, &label) in self.images.axis_iter(Axis(0)).zip(&self.labels) {
            sums[label] += row.mean().unwrap_or(0.0);
            counts[label] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> ImageDataset {
        let images = Array2::from_shape_fn((6, 4), |(i, j)| ((i + j) % 3) as f64 / 2.0);
        ImageDataset::new("toy", images, vec![0, 1, 2, 0, 1, 2], 2, 2, 1, 3)
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.pixel_len(), 4);
        assert_eq!(ds.classes(), 3);
        assert_eq!(ds.name(), "toy");
        assert!(!ds.is_empty());
    }

    #[test]
    fn binarize_thresholds() {
        let b = toy().binarized(0.4);
        assert!(b.images().iter().all(|&p| p == 0.0 || p == 1.0));
        assert_eq!(b.labels(), toy().labels());
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let ds = toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sh = ds.shuffled(&mut rng);
        assert_eq!(sh.len(), ds.len());
        // Every (image, label) pair in the shuffle exists in the original.
        for (row, &label) in sh.images().axis_iter(Axis(0)).zip(sh.labels()) {
            let found = ds
                .images()
                .axis_iter(Axis(0))
                .zip(ds.labels())
                .any(|(orig, &ol)| ol == label && orig == row);
            assert!(found, "pair lost in shuffle");
        }
    }

    #[test]
    fn slicing() {
        let ds = toy();
        let s = ds.slice(2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = ImageDataset::new("bad", Array2::zeros((1, 4)), vec![7], 2, 2, 1, 3);
    }

    #[test]
    fn class_means_have_expected_len() {
        assert_eq!(toy().class_means().len(), 3);
    }
}
