//! # ember-datasets
//!
//! Deterministic, procedurally generated stand-ins for the paper's
//! evaluation datasets (Table 1). Real MNIST/KMNIST/FMNIST/EMNIST/CIFAR/
//! SmallNORB/MovieLens/fraud data cannot ship with this repository, so each
//! generator synthesizes a distribution with the same dimensionality, class
//! structure, and difficulty *shape* (see DESIGN.md §2 for the substitution
//! argument). Every generator is a pure function of its seed.
//!
//! | Paper dataset | Generator | Geometry |
//! |---|---|---|
//! | MNIST | [`digits`] | 28×28 gray, 10 classes |
//! | KMNIST | [`kana`] | 28×28 gray, 10 classes |
//! | FMNIST | [`fashion`] | 28×28 gray, 10 classes |
//! | EMNIST letters | [`letters`] | 28×28 gray, 26 classes |
//! | CIFAR-10 | [`cifar`] | 32×32×3 color, 10 classes |
//! | SmallNORB | [`norb`] | 32×32 gray, 5 classes |
//! | MovieLens-100k | [`movielens`] | 943 users × 1682 items sparse ratings |
//! | Credit-card fraud | [`fraud`] | 28 features, ~0.6% positives |
//!
//! # Example
//!
//! ```
//! use ember_datasets::digits;
//!
//! let ds = digits::generate(100, 42);
//! assert_eq!(ds.images().dim(), (100, 784));
//! assert_eq!(ds.classes(), 10);
//! let binary = ds.binarized(0.5);
//! assert!(binary.images().iter().all(|&p| p == 0.0 || p == 1.0));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cifar;
mod dataset;
pub mod digits;
pub mod fashion;
pub mod fraud;
mod glyph;
pub mod kana;
pub mod letters;
pub mod movielens;
pub mod norb;
mod raster;
mod split;

pub use dataset::ImageDataset;
pub use fraud::FraudDataset;
pub use glyph::{Affine, Glyph, Stroke};
pub use movielens::{MovieLens, Rating};
pub use raster::Canvas;
pub use split::{train_test_split, SplitSets};
