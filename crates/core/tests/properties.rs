//! Property-based tests of the accelerator architectures.

use ember_analog::NoiseModel;
use ember_core::{BgfConfig, BoltzmannGradientFollower, GibbsSampler, GsConfig};
use ember_rbm::Rbm;
use ndarray::Array2;
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_data(max_rows: usize, cols: usize) -> impl Strategy<Value = Array2<f64>> {
    (1..=max_rows, any::<u64>()).prop_map(move |(rows, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        Array2::from_shape_fn(
            (rows, cols),
            |_| if rng.random_bool(0.5) { 1.0 } else { 0.0 },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BGF gate voltages stay within the rails for any packet size,
    /// noise level and data stream.
    #[test]
    fn bgf_rails_hold(
        seed in any::<u64>(),
        ratio_exp in 4u32..10,
        rms in 0.0f64..0.3,
        data in arb_data(12, 6),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = Rbm::random(6, 3, 0.3, &mut rng);
        let config = BgfConfig::default()
            .with_pump_ratio(1.0 / (1 << ratio_exp) as f64)
            .with_noise(NoiseModel::new(rms, rms).unwrap());
        let mut bgf = BoltzmannGradientFollower::new(init, config, &mut rng);
        for _ in 0..3 {
            bgf.train_epoch(&data, &mut rng);
        }
        let eff = bgf.effective_rbm();
        let s = bgf.config().weight_scale();
        // With conductance variation ≤ 1+3σ ≈ 2, effective weights are
        // bounded by 2s.
        prop_assert!(eff.weights().iter().all(|w| w.abs() <= 2.0 * s));
        prop_assert!(eff.weights().iter().all(|w| w.is_finite()));
    }

    /// Noiseless read-out differs from the effective model only by ADC
    /// quantization.
    #[test]
    fn readout_within_adc_lsb(seed in any::<u64>(), data in arb_data(6, 5)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = Rbm::random(5, 3, 0.2, &mut rng);
        let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
        bgf.train_epoch(&data, &mut rng);
        let exact = bgf.effective_rbm();
        let read = bgf.read_out(&mut rng);
        let lsb = 2.0 * bgf.config().weight_scale() / 255.0;
        for (a, b) in exact.weights().iter().zip(read.weights().iter()) {
            prop_assert!((a - b).abs() <= lsb + 1e-12);
        }
    }

    /// Counters are exact: one positive and one negative phase per sample,
    /// zero host MACs, phase points follow the config.
    #[test]
    fn bgf_counters_exact(data in arb_data(10, 4), epochs in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let init = Rbm::random(4, 2, 0.01, &mut rng);
        let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
        for _ in 0..epochs {
            bgf.train_epoch(&data, &mut rng);
        }
        let c = bgf.counters();
        let samples = (data.nrows() * epochs) as u64;
        prop_assert_eq!(c.positive_samples, samples);
        prop_assert_eq!(c.negative_samples, samples);
        prop_assert_eq!(c.host_mac_ops, 0);
        let per = bgf.config().settle_phase_points() + bgf.config().anneal_phase_points();
        prop_assert_eq!(c.phase_points, samples * per);
    }

    /// GS with the same seed is bit-reproducible.
    #[test]
    fn gs_deterministic(seed in any::<u64>(), data in arb_data(8, 5)) {
        let run = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let init = Rbm::random(5, 2, 0.01, &mut rng);
            let mut gs = GibbsSampler::new(init, GsConfig::default(), &mut rng);
            gs.train_epoch(&data, 4, &mut rng);
            gs.rbm().clone()
        };
        prop_assert_eq!(run(), run());
    }

    /// GS keeps host weights finite under any noise configuration.
    #[test]
    fn gs_finite_under_noise(seed in any::<u64>(), rms in 0.0f64..0.3, data in arb_data(8, 4)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = Rbm::random(4, 3, 0.05, &mut rng);
        let config = GsConfig::default().with_noise(NoiseModel::new(rms, rms).unwrap());
        let mut gs = GibbsSampler::new(init, config, &mut rng);
        for _ in 0..3 {
            gs.train_epoch(&data, 4, &mut rng);
        }
        prop_assert!(gs.rbm().weights().iter().all(|w| w.is_finite()));
    }
}
