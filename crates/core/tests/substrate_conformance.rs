//! Shared conformance suite for every [`Substrate`] backend.
//!
//! Two contracts are pinned here:
//!
//! 1. **Distribution conformance** — driving an alternating-clamp Gibbs
//!    chain through the trait (`sample_hidden_batch` /
//!    `sample_visible_batch`) must produce an empirical visible
//!    distribution within a total-variation tolerance of the exact
//!    enumeration (`exact::visible_distribution`). The calibrated
//!    backends (software node path, Metropolis annealer at `T = 1`) are
//!    held to a tight tolerance; the BRIM's dynamics-driven bath is an
//!    *approximate* sampler and gets a looser one.
//! 2. **Bit-identity of `SoftwareGibbs`** — the default
//!    `GibbsSampler` path must reproduce the pre-refactor batched
//!    engine bit for bit, at 1, 2, and 8 rayon threads. The expected
//!    values below were captured by running the pre-refactor
//!    implementation (commit c9e891c) with the identical seed/workload.

use ember_analog::NoiseModel;
use ember_brim::BrimConfig;
use ember_core::substrate::{AnnealerSubstrate, BrimSubstrate, SoftwareGibbs, Substrate};
use ember_core::{GibbsSampler, GsConfig, GsKernel};
use ember_rbm::{exact, Rbm};
use ndarray::{Array1, Array2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The tiny RBM every backend samples: 4 visible × 3 hidden, 16
/// enumerable visible states.
fn tiny_rbm() -> Rbm {
    let mut rng = StdRng::seed_from_u64(31);
    Rbm::random(4, 3, 0.8, &mut rng)
}

fn total_variation(p: &Array1<f64>, q: &Array1<f64>) -> f64 {
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Runs an alternating-clamp Gibbs chain through the trait and returns
/// the total variation between the empirical visible histogram and the
/// exact distribution.
fn substrate_visible_tv(substrate: &mut dyn Substrate, rbm: &Rbm, draws: usize, seed: u64) -> f64 {
    let m = rbm.visible_len();
    let exact_dist = exact::visible_distribution(rbm);
    substrate.program(
        &rbm.weights().view(),
        &rbm.visible_bias().view(),
        &rbm.hidden_bias().view(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let chains = 32;
    let mut v = Array2::from_shape_fn((chains, m), |_| f64::from(rng.random_bool(0.5)));
    for _ in 0..20 {
        let h = substrate.sample_hidden_batch(&v, &mut rng);
        v = substrate.sample_visible_batch(&h, &mut rng);
    }
    let mut hist = Array1::<f64>::zeros(1 << m);
    let per_chain = draws / chains;
    for _ in 0..per_chain {
        let h = substrate.sample_hidden_batch(&v, &mut rng);
        v = substrate.sample_visible_batch(&h, &mut rng);
        for row in v.rows() {
            let code = row
                .iter()
                .enumerate()
                .fold(0usize, |acc, (i, &x)| acc | (usize::from(x >= 0.5) << i));
            hist[code] += 1.0;
        }
    }
    hist /= (per_chain * chains) as f64;
    total_variation(&hist, &exact_dist)
}

#[test]
fn software_gibbs_matches_exact_distribution() {
    // Both kernels of the binary-state hot path sample the same
    // distribution — in fact the same bits (the chain is binary after
    // the random init, so the packed and dense kernels share every
    // accumulation order; see `ember_core::kernels`).
    let rbm = tiny_rbm();
    for kernel in [GsKernel::Packed, GsKernel::Dense] {
        let mut rng = StdRng::seed_from_u64(100);
        let config = GsConfig::default().with_kernel(kernel);
        let mut sub = SoftwareGibbs::new(4, 3, &config, &mut rng);
        let tv = substrate_visible_tv(&mut sub, &rbm, 6400, 1);
        assert!(tv < 0.05, "software Gibbs TV {tv} ({kernel:?})");
        let counters = sub.counters();
        match kernel {
            GsKernel::Packed => assert_eq!(counters.dense_kernel_calls, 0),
            GsKernel::Dense => assert_eq!(counters.packed_kernel_calls, 0),
        }
    }
}

#[test]
fn annealer_matches_exact_distribution() {
    let rbm = tiny_rbm();
    for kernel in [GsKernel::Packed, GsKernel::Dense] {
        let mut sub = AnnealerSubstrate::for_rbm(&rbm).with_kernel(kernel);
        let tv = substrate_visible_tv(&mut sub, &rbm, 6400, 2);
        assert!(tv < 0.05, "annealer TV {tv} ({kernel:?})");
    }
}

#[test]
fn brim_tracks_exact_distribution() {
    // The BRIM's flip-injection bath is an uncalibrated approximation of
    // the Boltzmann conditionals (its effective temperature is set by the
    // flip rate, not by β = 1), so the tolerance is looser — but it must
    // clearly track the target distribution: a uniform sampler sits at
    // TV ≈ 0.45 on this RBM.
    let rbm = tiny_rbm();
    let mut sub = BrimSubstrate::for_rbm(&rbm, BrimConfig::default()).with_thermal_bath(0.005, 120);
    let tv = substrate_visible_tv(&mut sub, &rbm, 3200, 3);
    assert!(tv < 0.15, "BRIM TV {tv}");
}

#[test]
fn substrates_report_conditional_sampling_work() {
    // Every backend must account its sampling work: phase points and
    // read-out words strictly grow with each conditional sample.
    let rbm = tiny_rbm();
    let mut rng = StdRng::seed_from_u64(7);
    let soft = SoftwareGibbs::new(4, 3, &GsConfig::default(), &mut rng);
    let subs: Vec<Box<dyn Substrate>> = vec![
        Box::new(soft),
        Box::new(BrimSubstrate::for_rbm(&rbm, BrimConfig::default())),
        Box::new(AnnealerSubstrate::for_rbm(&rbm)),
    ];
    for mut sub in subs {
        sub.program(
            &rbm.weights().view(),
            &rbm.visible_bias().view(),
            &rbm.hidden_bias().view(),
        );
        assert_eq!(
            sub.counters().host_words_transferred,
            sub.programming_cost(),
            "{} programming words",
            sub.name()
        );
        let v = Array2::zeros((5, 4));
        let h = sub.sample_hidden_batch(&v, &mut rng);
        assert_eq!(h.dim(), (5, 3), "{} shape", sub.name());
        assert!(
            h.iter().all(|&x| x == 0.0 || x == 1.0),
            "{} binary",
            sub.name()
        );
        assert!(
            sub.counters().phase_points > 0,
            "{} phase points",
            sub.name()
        );
        assert_eq!(
            sub.counters().host_words_transferred,
            sub.programming_cost() + 5 * 3,
            "{} read-out words",
            sub.name()
        );
    }
}

// --- Bit-identity of the default (SoftwareGibbs) GibbsSampler path ----

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Final weight bits of the pre-refactor `GibbsSampler` batched engine:
/// seed 42, 6×4 RBM (std 0.1), k = 2, noise (0.05, 0.05), 3 epochs of
/// batch-4 training over the 12-row parity dataset below.
const GOLDEN_WEIGHT_BITS: [u64; 24] = [
    0x3faad14cee4d4743,
    0xbf9c817e6d324492,
    0x3fa7c4109956af73,
    0x3fc94bc63430ca3e,
    0x3fd00ccfe7499df7,
    0x3fb3e5879ddb019b,
    0x3fb64adc0d66ca22,
    0x3fae7f023fefdf51,
    0x3fc9fe850def9fce,
    0xbfc0338c88b2dc94,
    0xbfd17ef0f1887d6c,
    0x3f6f4624161802c0,
    0x3fbd32b1d4cfb1b6,
    0xbfc01931b500170a,
    0x3fb30cb999153849,
    0x3f966b8eb20061ec,
    0x3fbbf1e88a25c986,
    0x3f990b442eb7004c,
    0x3fbac7c90c5f28e1,
    0x3faa1574d3a8626b,
    0x3fc9266f6712ac29,
    0xbfc19d021675e0df,
    0xbfc31072bfdb0259,
    0x3fb6312047751f98,
];

/// Bias bits (visible then hidden) of the same golden run.
const GOLDEN_BIAS_BITS: [u64; 10] = [
    0x3f9999999999999c,
    0x3fb999999999999a,
    0xbf9999999999999a,
    0x0000000000000000,
    0xbf9999999999999c,
    0xbc60000000000000,
    0x3fcccccccccccccd,
    0xbfa999999999999a,
    0xbfb999999999999a,
    0x3fb3333333333334,
];

fn golden_workload() -> (Rbm, GsConfig, Array2<f64>) {
    let mut rng = StdRng::seed_from_u64(42);
    let rbm = Rbm::random(6, 4, 0.1, &mut rng);
    let config = GsConfig::default()
        .with_k(2)
        .with_noise(NoiseModel::new(0.05, 0.05).unwrap());
    let data = Array2::from_shape_fn((12, 6), |(i, j)| f64::from((i + j) % 2 == 0));
    (rbm, config, data)
}

fn run_golden_workload(kernel: GsKernel) -> GibbsSampler {
    let mut rng = StdRng::seed_from_u64(42);
    let rbm = Rbm::random(6, 4, 0.1, &mut rng);
    let (_, config, data) = golden_workload();
    let mut gs = GibbsSampler::new(rbm, config.with_kernel(kernel), &mut rng);
    for _ in 0..3 {
        gs.train_epoch(&data, 4, &mut rng);
    }
    gs
}

#[test]
fn software_gibbs_bit_identical_to_pre_refactor_batched_path() {
    // Every (thread count × kernel) combination must land on the same
    // pre-refactor bits: the rayon row blocks and the bit-packed kernel
    // both preserve per-element accumulation order exactly.
    for threads in THREAD_COUNTS {
        for kernel in [GsKernel::Packed, GsKernel::Dense] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let gs = run_golden_workload(kernel);
                let weight_bits: Vec<u64> =
                    gs.rbm().weights().iter().map(|w| w.to_bits()).collect();
                assert_eq!(
                    weight_bits,
                    GOLDEN_WEIGHT_BITS.to_vec(),
                    "weights diverged from pre-refactor output at {threads} threads ({kernel:?})"
                );
                let bias_bits: Vec<u64> = gs
                    .rbm()
                    .visible_bias()
                    .iter()
                    .chain(gs.rbm().hidden_bias().iter())
                    .map(|b| b.to_bits())
                    .collect();
                assert_eq!(
                    bias_bits,
                    GOLDEN_BIAS_BITS.to_vec(),
                    "biases diverged from pre-refactor output at {threads} threads ({kernel:?})"
                );
                // Counter totals of the pre-refactor run, same capture.
                let c = gs.counters();
                assert_eq!(c.positive_samples, 36);
                assert_eq!(c.negative_samples, 36);
                assert_eq!(c.phase_points, 9000);
                assert_eq!(c.host_words_transferred, 1204);
                assert_eq!(c.host_mac_ops, 2034);
            });
        }
    }
}
