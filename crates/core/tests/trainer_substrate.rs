//! The trainers are generic over the sampling backend: CD/PCD epochs
//! driven through every `Substrate`, including BRIM-in-the-loop
//! end-to-end training (the paper's headline claim).

use ember_brim::BrimConfig;
use ember_core::substrate::{AnnealerSubstrate, BrimSubstrate, SoftwareGibbs, Substrate};
use ember_core::GsConfig;
use ember_rbm::{exact, CdTrainer, PcdTrainer, Rbm, RngStreams};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn two_mode_data(rows: usize, m: usize) -> Array2<f64> {
    Array2::from_shape_fn((rows, m), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 })
}

#[test]
fn cd_through_software_substrate_learns() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut rbm = Rbm::random(8, 4, 0.01, &mut rng);
    let data = two_mode_data(40, 8);
    let before = exact::mean_log_likelihood(&rbm, &data);
    let mut sub = SoftwareGibbs::new(8, 4, &GsConfig::default(), &mut rng);
    let trainer = CdTrainer::new(1, 0.05);
    for _ in 0..60 {
        trainer.train_epoch_with(&mut rbm, &data, 10, &mut sub, &mut rng);
    }
    let after = exact::mean_log_likelihood(&rbm, &data);
    assert!(after > before + 1.0, "LL {before} -> {after}");
    assert_eq!(sub.counters().positive_samples, 60 * 40);
}

#[test]
fn cd_through_brim_substrate_trains_end_to_end() {
    // BRIM-in-the-loop CD-1: the machine's clamp/anneal/read cycle is the
    // only source of samples. Its conditionals run at an uncalibrated
    // effective temperature, yet the gradient signal must still pull the
    // model toward the data.
    let mut rng = StdRng::seed_from_u64(3);
    let mut rbm = Rbm::random(8, 4, 0.01, &mut rng);
    let data = two_mode_data(40, 8);
    let before = exact::mean_log_likelihood(&rbm, &data);
    let mut sub = BrimSubstrate::for_rbm(&rbm, BrimConfig::default()).with_thermal_bath(0.01, 80);
    let trainer = CdTrainer::new(1, 0.1);
    for _ in 0..90 {
        trainer.train_epoch_with(&mut rbm, &data, 10, &mut sub, &mut rng);
    }
    let after = exact::mean_log_likelihood(&rbm, &data);
    assert!(after > before + 0.5, "LL {before} -> {after}");
    assert!(rbm.weights().iter().all(|w| w.is_finite()));
    // The substrate did the sampling: 3 settles per sample at k=1.
    assert_eq!(sub.counters().phase_points, 90 * 40 * 3 * 80);
}

#[test]
fn cd_through_annealer_substrate_learns() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut rbm = Rbm::random(8, 4, 0.01, &mut rng);
    let data = two_mode_data(40, 8);
    let before = exact::mean_log_likelihood(&rbm, &data);
    let mut sub = AnnealerSubstrate::for_rbm(&rbm);
    let trainer = CdTrainer::new(1, 0.05);
    for _ in 0..60 {
        trainer.train_epoch_with(&mut rbm, &data, 10, &mut sub, &mut rng);
    }
    let after = exact::mean_log_likelihood(&rbm, &data);
    assert!(after > before + 0.5, "LL {before} -> {after}");
}

#[test]
fn pcd_through_substrate_runs_and_particles_evolve() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut rbm = Rbm::random(6, 3, 0.2, &mut rng);
    let data = two_mode_data(12, 6);
    let mut sub = SoftwareGibbs::new(6, 3, &GsConfig::default(), &mut rng);
    let mut trainer = PcdTrainer::new(1, 0.05, 8, &rbm, &mut rng);
    let before = trainer.particles().clone();
    let stats = trainer.train_epoch_with(&mut rbm, &data, 6, &mut sub, &mut rng);
    assert_eq!(stats.batches, 2);
    assert_ne!(&before, trainer.particles());
    assert!(trainer.particles().iter().all(|&x| x == 0.0 || x == 1.0));
    assert_eq!(sub.counters().negative_samples, 2 * 8);
}

#[test]
fn par_with_is_bit_identical_across_thread_counts() {
    let data = two_mode_data(24, 6);
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut rbm = Rbm::random(6, 4, 0.01, &mut rng);
            let mut sub = SoftwareGibbs::new(6, 4, &GsConfig::default(), &mut rng);
            let trainer = CdTrainer::new(2, 0.1);
            let streams = RngStreams::new(77);
            for epoch in 0..3 {
                trainer.train_epoch_par_with(
                    &mut rbm,
                    &data,
                    8,
                    &mut sub,
                    4,
                    streams.subfamily(epoch),
                );
            }
            (rbm, *sub.counters())
        })
    };
    let (reference, ref_counters) = run(1);
    for threads in [2, 8] {
        let (rbm, counters) = run(threads);
        assert_eq!(
            rbm, reference,
            "train_epoch_par_with diverged at {threads} threads"
        );
        assert_eq!(
            counters, ref_counters,
            "counters diverged at {threads} threads"
        );
    }
}

#[test]
fn pcd_par_with_is_bit_identical_across_thread_counts() {
    let data = two_mode_data(16, 5);
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut rng = StdRng::seed_from_u64(13);
            let mut rbm = Rbm::random(5, 3, 0.01, &mut rng);
            let mut sub = SoftwareGibbs::new(5, 3, &GsConfig::default(), &mut rng);
            let mut trainer = PcdTrainer::new(1, 0.05, 6, &rbm, &mut rng);
            let streams = RngStreams::new(55);
            for epoch in 0..2 {
                trainer.train_epoch_par_with(
                    &mut rbm,
                    &data,
                    8,
                    &mut sub,
                    3,
                    streams.subfamily(epoch),
                );
            }
            (rbm, trainer.particles().clone())
        })
    };
    let (reference_rbm, reference_particles) = run(1);
    for threads in [2, 8] {
        let (rbm, particles) = run(threads);
        assert_eq!(rbm, reference_rbm, "model diverged at {threads} threads");
        assert_eq!(
            particles, reference_particles,
            "particles diverged at {threads} threads"
        );
    }
}

#[test]
fn heterogeneous_substrates_drive_one_training_loop() {
    // The runtime-swap story: one trainer, one loop, three boxed
    // backends — each trains its own copy of the model through the
    // object-safe trait.
    let mut rng = StdRng::seed_from_u64(21);
    let rbm = Rbm::random(5, 3, 0.01, &mut rng);
    let data = two_mode_data(10, 5);
    let soft = SoftwareGibbs::new(5, 3, &GsConfig::default(), &mut rng);
    let mut backends: Vec<Box<dyn Substrate>> = vec![
        Box::new(soft),
        Box::new(BrimSubstrate::for_rbm(&rbm, BrimConfig::default()).with_thermal_bath(0.01, 40)),
        Box::new(AnnealerSubstrate::for_rbm(&rbm)),
    ];
    let trainer = CdTrainer::new(1, 0.05);
    for backend in &mut backends {
        let mut model = rbm.clone();
        let stats = trainer.train_epoch_with(&mut model, &data, 5, backend.as_mut(), &mut rng);
        assert_eq!(stats.batches, 2, "{}", backend.name());
        assert!(model.weights().iter().all(|w| w.is_finite()));
        assert!(backend.counters().phase_points > 0, "{}", backend.name());
    }
}
