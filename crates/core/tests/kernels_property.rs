//! Property-based tests of the bit-packed binary-state kernel layer
//! (`ember_core::kernels`): pack/unpack round-trips at widths that are
//! not multiples of 64, and bit-identity of the packed GEMM against the
//! scalar row-loop reference kernel on random binary batches.

use ember_core::kernels::{binary_gemm, is_binary, scalar_ref_gemm, BitMatrix};
use ndarray::{Array1, Array2};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random binary batch with the given density, from a derived seed.
fn binary_batch(rows: usize, cols: usize, density: f64, seed: u64) -> Array2<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Array2::from_shape_fn((rows, cols), |_| f64::from(rng.random_bool(density)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packing any binary batch and unpacking it is the identity, at
    /// widths straddling word boundaries (1..=200 covers 0, 1, 2, 3
    /// whole words plus every residue class that matters).
    #[test]
    fn pack_unpack_round_trips(
        rows in 1usize..12,
        cols in 1usize..200,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let dense = binary_batch(rows, cols, density, seed);
        let bits = BitMatrix::from_batch(&dense).expect("binary batch packs");
        prop_assert_eq!(bits.nrows(), rows);
        prop_assert_eq!(bits.ncols(), cols);
        prop_assert_eq!(bits.words_per_row(), cols.div_ceil(64));
        prop_assert_eq!(bits.to_dense(), dense.clone());
        prop_assert_eq!(bits.count_ones() as f64, dense.sum());
        // Every bit individually agrees too.
        for r in 0..rows {
            for j in 0..cols {
                prop_assert_eq!(bits.get(r, j), dense[[r, j]] == 1.0);
            }
        }
    }

    /// The packed product is bit-identical to the scalar row-loop
    /// reference kernel on random binary batches — set-bit iteration
    /// order is index order, and skipping exact zeros is a
    /// floating-point no-op.
    #[test]
    fn binary_gemm_is_bit_identical_to_scalar_reference(
        rows in 1usize..8,
        fan_in in 1usize..150,
        out in 1usize..12,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let states = binary_batch(rows, fan_in, density, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1));
        let w = Array2::from_shape_fn((fan_in, out), |_| rng.random_range(-2.0..2.0));
        let bias = Array1::from_shape_fn(out, |_| rng.random_range(-1.0..1.0));
        let bits = BitMatrix::from_batch(&states).expect("binary batch packs");
        for use_bias in [false, true] {
            let b = use_bias.then(|| bias.view());
            let packed = binary_gemm(&bits, &w, b.as_ref());
            let reference = scalar_ref_gemm(&states, &w, b.as_ref());
            let packed_bits: Vec<u64> = packed.iter().map(|x| x.to_bits()).collect();
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(packed_bits, ref_bits, "use_bias = {}", use_bias);
        }
    }

    /// Any batch containing a non-binary entry refuses to pack (the
    /// callers' dense-fallback trigger), and `is_binary` agrees.
    #[test]
    fn non_binary_entries_refuse_to_pack(
        rows in 1usize..6,
        cols in 1usize..80,
        poke_r in any::<u64>(),
        poke_c in any::<u64>(),
        level in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut dense = binary_batch(rows, cols, 0.5, seed);
        prop_assume!(level != 0.0 && level != 1.0);
        dense[[poke_r as usize % rows, poke_c as usize % cols]] = level;
        prop_assert!(!is_binary(&dense));
        prop_assert!(BitMatrix::from_batch(&dense).is_none());
    }
}

/// SIMD-tier bit-identity at deliberately non-lane-multiple widths.
///
/// These compare the *dispatched* kernels (whatever tier this host
/// detected — AVX2, NEON, or scalar) against the explicit scalar
/// references via `ndarray::simd`'s `_scalar` entry points, so on a
/// vector host every case pins vector-vs-scalar bitwise equality at
/// widths that exercise the remainder loops (63/65/127 columns) and
/// row counts that straddle the GEMM's 4/8-row blocking (1–9 rows).
/// On a scalar host they degenerate to self-consistency and still pass.
mod simd_tier {
    use super::*;
    use ember_core::kernels::{binary_field_row, scalar_ref_field_row};
    use ndarray::simd;

    /// Weights with order-sensitive magnitudes: any reassociation of
    /// the accumulation shows up in the low mantissa bits.
    fn weight_matrix(rows: usize, cols: usize, seed: u64) -> Array2<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Array2::from_shape_fn((rows, cols), |_| rng.random_range(-3.0..3.0))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Path (a): `binary_gemm`'s selected-row accumulation — the
        /// packed product on the active tier vs the scalar row-loop
        /// reference, at widths straddling both the 64-bit word and
        /// the 4-lane vector boundaries.
        #[test]
        fn packed_gemm_simd_matches_scalar_reference(
            rows in 1usize..10,
            cols_pick in 0usize..6,
            fan_in in 1usize..80,
            density in 0.0f64..=1.0,
            seed in any::<u64>(),
        ) {
            let cols = [63usize, 64, 65, 127, 128, 129][cols_pick];
            let states = binary_batch(rows, fan_in, density, seed);
            let w = weight_matrix(fan_in, cols, seed.wrapping_add(7));
            let bits = BitMatrix::from_batch(&states).expect("binary batch packs");
            let fast = binary_gemm(&bits, &w, None);
            let slow = scalar_ref_gemm(&states, &w, None);
            let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(fast_bits, slow_bits);
        }

        /// Path (a), block dispatch: shapes chosen to satisfy
        /// `block_path_wins` (≥8 rows per chunk, fan-in ≥ 2× the
        /// output width, output width in 128..=448) so the
        /// transposed-mask block scatter runs — including row counts
        /// that straddle the 64-row chunk boundary — and must stay
        /// bit-identical to the scalar row-loop reference.
        #[test]
        fn packed_gemm_block_path_matches_scalar_reference(
            rows_pick in 0usize..4,
            out_pick in 0usize..4,
            extra_fan_in in 0usize..60,
            density in 0.0f64..=1.0,
            seed in any::<u64>(),
        ) {
            let rows = [8usize, 23, 64, 67][rows_pick];
            let out = [128usize, 129, 200, 255][out_pick];
            let fan_in = 2 * out + extra_fan_in;
            let states = binary_batch(rows, fan_in, density, seed);
            let w = weight_matrix(fan_in, out, seed.wrapping_add(11));
            let bits = BitMatrix::from_batch(&states).expect("binary batch packs");
            let fast = binary_gemm(&bits, &w, None);
            let slow = scalar_ref_gemm(&states, &w, None);
            let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(fast_bits, slow_bits);
        }

        /// Path (b): the dense GEMM's `ikj` inner loop and dot kernel —
        /// `.dot()` on the active tier vs an explicitly scalar-primitive
        /// reference GEMM, with a dense (no sparse-path) left operand
        /// at 1–9 rows (exercising both the 4-row blocks and the
        /// trailing-row axpy path).
        #[test]
        fn dense_gemm_simd_matches_scalar_primitives(
            m in 1usize..10,
            k in 1usize..40,
            n_pick in 0usize..3,
            seed in any::<u64>(),
        ) {
            let n = [63usize, 65, 127][n_pick];
            let a = weight_matrix(m, k, seed);
            let b = weight_matrix(k, n, seed.wrapping_add(1));
            let fast = a.dot(&b);
            // Scalar reference built from the `_scalar` primitives in
            // the exact blocked-ikj order of the vendored kernel.
            let mut slow = vec![0.0f64; m * n];
            {
                let bd = b.as_slice();
                let mut r = 0;
                while r + 4 <= m {
                    for p in 0..k {
                        let brow = &bd[p * n..(p + 1) * n];
                        let coeffs = [a[[r, p]], a[[r + 1, p]], a[[r + 2, p]], a[[r + 3, p]]];
                        for (t, &c) in coeffs.iter().enumerate() {
                            let row = &mut slow[(r + t) * n..(r + t + 1) * n];
                            simd::axpy_scalar(row, c, brow);
                        }
                    }
                    r += 4;
                }
                for i in r..m {
                    for p in 0..k {
                        let aip = a[[i, p]];
                        if aip != 0.0 {
                            let row = &mut slow[i * n..(i + 1) * n];
                            simd::axpy_scalar(row, aip, &bd[p * n..(p + 1) * n]);
                        }
                    }
                }
            }
            let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(fast_bits, slow_bits);
        }

        /// Path (c): the serial per-chain field kernel — SIMD
        /// selected-row accumulation vs the scalar per-element loop of
        /// `sample_layer_reference`, at non-lane-multiple output widths
        /// and both directions (the reverse pass hands in `Wᵀ`).
        #[test]
        fn serial_field_simd_matches_scalar_reference(
            fan_in in 1usize..80,
            out_pick in 0usize..5,
            density in 0.0f64..=1.0,
            seed in any::<u64>(),
        ) {
            let out = [1usize, 9, 63, 65, 127][out_pick];
            let input = binary_batch(1, fan_in, density, seed).row(0).to_owned();
            let w = weight_matrix(fan_in, out, seed.wrapping_add(3));
            let fast = binary_field_row(&input.view(), &w).expect("binary row");
            let slow = scalar_ref_field_row(&input.view(), &w);
            let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(fast_bits, slow_bits);

            // A non-binary entry refuses the packed path (dense fallback).
            let mut gray = input.clone();
            gray[seed as usize % fan_in] = 0.5;
            prop_assert!(binary_field_row(&gray.view(), &w).is_none());
        }

        /// The four SIMD slice primitives themselves, dispatched vs
        /// scalar, on random data at remainder-exercising lengths.
        #[test]
        fn simd_primitives_match_scalar_bitwise(
            n_pick in 0usize..5,
            x in -3.0f64..3.0,
            seed in any::<u64>(),
        ) {
            let n = [1usize, 3, 63, 65, 127][n_pick];
            let a = weight_matrix(1, n, seed).row(0).to_owned();
            let b = weight_matrix(1, n, seed.wrapping_add(9)).row(0).to_owned();
            let (a, b) = (a.as_slice().to_vec(), b.as_slice().to_vec());

            prop_assert_eq!(
                simd::dot(&a, &b).to_bits(),
                simd::dot_scalar(&a, &b).to_bits()
            );

            let mut o_fast = b.clone();
            let mut o_slow = b.clone();
            simd::axpy(&mut o_fast, x, &a);
            simd::axpy_scalar(&mut o_slow, x, &a);
            prop_assert_eq!(
                o_fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                o_slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );

            let mut o_fast = b.clone();
            let mut o_slow = b;
            simd::add_assign(&mut o_fast, &a);
            simd::add_assign_scalar(&mut o_slow, &a);
            prop_assert_eq!(
                o_fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                o_slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
