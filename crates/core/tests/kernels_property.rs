//! Property-based tests of the bit-packed binary-state kernel layer
//! (`ember_core::kernels`): pack/unpack round-trips at widths that are
//! not multiples of 64, and bit-identity of the packed GEMM against the
//! scalar row-loop reference kernel on random binary batches.

use ember_core::kernels::{binary_gemm, is_binary, scalar_ref_gemm, BitMatrix};
use ndarray::{Array1, Array2};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random binary batch with the given density, from a derived seed.
fn binary_batch(rows: usize, cols: usize, density: f64, seed: u64) -> Array2<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Array2::from_shape_fn((rows, cols), |_| f64::from(rng.random_bool(density)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packing any binary batch and unpacking it is the identity, at
    /// widths straddling word boundaries (1..=200 covers 0, 1, 2, 3
    /// whole words plus every residue class that matters).
    #[test]
    fn pack_unpack_round_trips(
        rows in 1usize..12,
        cols in 1usize..200,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let dense = binary_batch(rows, cols, density, seed);
        let bits = BitMatrix::from_batch(&dense).expect("binary batch packs");
        prop_assert_eq!(bits.nrows(), rows);
        prop_assert_eq!(bits.ncols(), cols);
        prop_assert_eq!(bits.words_per_row(), cols.div_ceil(64));
        prop_assert_eq!(bits.to_dense(), dense.clone());
        prop_assert_eq!(bits.count_ones() as f64, dense.sum());
        // Every bit individually agrees too.
        for r in 0..rows {
            for j in 0..cols {
                prop_assert_eq!(bits.get(r, j), dense[[r, j]] == 1.0);
            }
        }
    }

    /// The packed product is bit-identical to the scalar row-loop
    /// reference kernel on random binary batches — set-bit iteration
    /// order is index order, and skipping exact zeros is a
    /// floating-point no-op.
    #[test]
    fn binary_gemm_is_bit_identical_to_scalar_reference(
        rows in 1usize..8,
        fan_in in 1usize..150,
        out in 1usize..12,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let states = binary_batch(rows, fan_in, density, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1));
        let w = Array2::from_shape_fn((fan_in, out), |_| rng.random_range(-2.0..2.0));
        let bias = Array1::from_shape_fn(out, |_| rng.random_range(-1.0..1.0));
        let bits = BitMatrix::from_batch(&states).expect("binary batch packs");
        for use_bias in [false, true] {
            let b = use_bias.then(|| bias.view());
            let packed = binary_gemm(&bits, &w, b.as_ref());
            let reference = scalar_ref_gemm(&states, &w, b.as_ref());
            let packed_bits: Vec<u64> = packed.iter().map(|x| x.to_bits()).collect();
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(packed_bits, ref_bits, "use_bias = {}", use_bias);
        }
    }

    /// Any batch containing a non-binary entry refuses to pack (the
    /// callers' dense-fallback trigger), and `is_binary` agrees.
    #[test]
    fn non_binary_entries_refuse_to_pack(
        rows in 1usize..6,
        cols in 1usize..80,
        poke_r in any::<u64>(),
        poke_c in any::<u64>(),
        level in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut dense = binary_batch(rows, cols, 0.5, seed);
        prop_assume!(level != 0.0 && level != 1.0);
        dense[[poke_r as usize % rows, poke_c as usize % cols]] = level;
        prop_assert!(!is_binary(&dense));
        prop_assert!(BitMatrix::from_batch(&dense).is_none());
    }
}
