use ndarray::{Array1, Array2, ArrayView1};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ember_analog::{Comparator, NoiseModel, SigmoidUnit, ThermalRng};

/// The probabilistic node path of the augmented substrate (§3.2, Fig. 12):
/// analog current summation through the coupling mesh → sigmoid unit →
/// comparator against a thermal-noise reference → latched Bernoulli sample.
///
/// Dynamic noise (§4.5) is injected at two places, matching the paper's
/// "dynamic noises at both nodes and coupling units":
///
/// * **coupler noise** — each coupler current `Wᵢⱼ·uᵢ` carries independent
///   relative Gaussian noise; the sum over the fan-in therefore has
///   standard deviation `RMS·√(Σᵢ (Wᵢⱼ uᵢ)²)`, which is applied in closed
///   form (no per-coupler sampling needed);
/// * **node noise** — a unit-scale disturbance on the summed voltage.
///
/// # Example
///
/// ```
/// use ember_core::AnalogSampler;
/// use ember_analog::NoiseModel;
/// use ndarray::{arr1, arr2};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let sampler = AnalogSampler::ideal();
/// let w = arr2(&[[8.0], [8.0]]);
/// let bias = arr1(&[-4.0]);
/// let v = arr1(&[1.0, 1.0]);
/// // Field = 12 ≫ 0, so the unit fires essentially always.
/// let h = sampler.sample_layer(&w.view(), &bias.view(), &v.view(), &mut rng);
/// assert_eq!(h[0], 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalogSampler {
    sigmoid: SigmoidUnit,
    comparator: Comparator,
    thermal: ThermalRng,
    noise: NoiseModel,
}

impl AnalogSampler {
    /// An ideal front end: exact logistic, offset-free comparator,
    /// full-swing uniform reference, no noise.
    pub fn ideal() -> Self {
        AnalogSampler {
            sigmoid: SigmoidUnit::ideal(),
            comparator: Comparator::ideal(),
            thermal: ThermalRng::default(),
            noise: NoiseModel::noiseless(),
        }
    }

    /// A front end with explicit component models.
    pub fn new(sigmoid: SigmoidUnit, comparator: Comparator, noise: NoiseModel) -> Self {
        AnalogSampler {
            sigmoid,
            comparator,
            thermal: ThermalRng::default(),
            noise,
        }
    }

    /// The configured noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// The configured sigmoid unit.
    pub fn sigmoid(&self) -> SigmoidUnit {
        self.sigmoid
    }

    /// Computes the noisy analog fields of one output layer:
    /// `fieldⱼ = Σᵢ Wᵢⱼ uᵢ + bⱼ + noise`.
    ///
    /// `weights` is `(fan_in × out)`; `input` is the clamped side's levels.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn fields<R: Rng + ?Sized>(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        input: &ArrayView1<'_, f64>,
        rng: &mut R,
    ) -> Array1<f64> {
        assert_eq!(weights.nrows(), input.len(), "fan-in mismatch");
        assert_eq!(weights.ncols(), bias.len(), "fan-out mismatch");
        let mut field = weights.t().dot(input) + bias;
        if self.noise.noise_rms() > 0.0 {
            // Closed-form aggregate of independent relative coupler noises.
            let sq_in = input.mapv(|x| x * x);
            let sq_w = weights.mapv(|w| w * w);
            let var_coupler = sq_w.t().dot(&sq_in);
            for (j, f) in field.iter_mut().enumerate() {
                let sigma = (var_coupler[j] + 1.0).sqrt(); // +1: unit-scale node noise
                *f = self.noise.perturb(*f, sigma, rng);
            }
        }
        field
    }

    /// Sigmoid-unit probabilities for the given noisy fields.
    pub fn probabilities(&self, fields: &Array1<f64>) -> Array1<f64> {
        fields.mapv(|x| self.sigmoid.transfer(x))
    }

    /// Full node path: fields → sigmoid → comparator. Returns 0/1 samples.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sample_layer<R: Rng + ?Sized>(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        input: &ArrayView1<'_, f64>,
        rng: &mut R,
    ) -> Array1<f64> {
        let fields = self.fields(weights, bias, input, rng);
        let probs = self.probabilities(&fields);
        probs.mapv(|p| {
            if self.comparator.sample(p, &self.thermal, rng) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Samples the *transpose* direction (output layer clamped, fan-in side
    /// sampled): used when the hidden side drives the visible side.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sample_layer_rev<R: Rng + ?Sized>(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        input: &ArrayView1<'_, f64>,
        rng: &mut R,
    ) -> Array1<f64> {
        assert_eq!(weights.ncols(), input.len(), "fan-in mismatch (rev)");
        assert_eq!(weights.nrows(), bias.len(), "fan-out mismatch (rev)");
        let mut field = weights.dot(input) + bias;
        if self.noise.noise_rms() > 0.0 {
            let sq_in = input.mapv(|x| x * x);
            let sq_w = weights.mapv(|w| w * w);
            let var_coupler = sq_w.dot(&sq_in);
            for (j, f) in field.iter_mut().enumerate() {
                let sigma = (var_coupler[j] + 1.0).sqrt();
                *f = self.noise.perturb(*f, sigma, rng);
            }
        }
        let probs = self.probabilities(&field);
        probs.mapv(|p| {
            if self.comparator.sample(p, &self.thermal, rng) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Whole-minibatch node path, forward direction: every row of
    /// `inputs` (`batch × fan_in`) is one clamped configuration; the
    /// analog vector-matrix products of the whole batch collapse into a
    /// single GEMM (`inputs · W`), then the sigmoid/comparator path runs
    /// element-wise in row-major order. Returns `batch × out` samples.
    ///
    /// Statistically identical to calling [`AnalogSampler::sample_layer`]
    /// per row (same per-element noise model), but consumes the RNG in
    /// row-major element order rather than row-call order.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sample_layer_batch<R: Rng + ?Sized>(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        inputs: &Array2<f64>,
        rng: &mut R,
    ) -> Array2<f64> {
        assert_eq!(weights.nrows(), inputs.ncols(), "fan-in mismatch");
        assert_eq!(weights.ncols(), bias.len(), "fan-out mismatch");
        let mut fields = inputs.dot(weights);
        self.finish_batch(&mut fields, bias, weights, inputs, false, rng);
        fields
    }

    /// Whole-minibatch node path, reverse direction (output layer
    /// clamped): `inputs` is `batch × out`, the GEMM is `inputs · Wᵀ`,
    /// and the result is `batch × fan_in`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sample_layer_rev_batch<R: Rng + ?Sized>(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        inputs: &Array2<f64>,
        rng: &mut R,
    ) -> Array2<f64> {
        assert_eq!(weights.ncols(), inputs.ncols(), "fan-in mismatch (rev)");
        assert_eq!(weights.nrows(), bias.len(), "fan-out mismatch (rev)");
        let mut fields = inputs.dot(&weights.t());
        self.finish_batch(&mut fields, bias, weights, inputs, true, rng);
        fields
    }

    /// Whole-minibatch node path, forward direction, with **one RNG
    /// stream per row**: the analog vector-matrix products still collapse
    /// into a single GEMM, but the sigmoid/comparator tail of row `i`
    /// draws exclusively from `rngs[i]`.
    ///
    /// This is the serving-layer kernel: because the GEMM accumulates
    /// each output row independently of the others and the stochastic
    /// tail is per-row, row `i`'s bits depend only on (weights, bias,
    /// row `i`, `rngs[i]`) — identical whether the row is sampled alone
    /// or coalesced into any batch.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `rngs.len() != inputs.nrows()`.
    pub fn sample_layer_batch_rows(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        inputs: &Array2<f64>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Array2<f64> {
        assert_eq!(weights.nrows(), inputs.ncols(), "fan-in mismatch");
        assert_eq!(weights.ncols(), bias.len(), "fan-out mismatch");
        let mut fields = inputs.dot(weights);
        self.finish_batch_rows(&mut fields, bias, weights, inputs, false, rngs);
        fields
    }

    /// Reverse-direction counterpart of
    /// [`AnalogSampler::sample_layer_batch_rows`] (output layer clamped,
    /// fan-in side sampled), one RNG stream per row.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `rngs.len() != inputs.nrows()`.
    pub fn sample_layer_rev_batch_rows(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        inputs: &Array2<f64>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Array2<f64> {
        assert_eq!(weights.ncols(), inputs.ncols(), "fan-in mismatch (rev)");
        assert_eq!(weights.nrows(), bias.len(), "fan-out mismatch (rev)");
        let mut fields = inputs.dot(&weights.t());
        self.finish_batch_rows(&mut fields, bias, weights, inputs, true, rngs);
        fields
    }

    /// Per-row-stream tail of the batched node path: same arithmetic as
    /// [`AnalogSampler::finish_batch`], but row `i` of the field matrix
    /// consumes only `rngs[i]`.
    fn finish_batch_rows(
        &self,
        fields: &mut Array2<f64>,
        bias: &ArrayView1<'_, f64>,
        weights: &ndarray::ArrayView2<'_, f64>,
        inputs: &Array2<f64>,
        rev: bool,
        rngs: &mut [&mut dyn rand::RngCore],
    ) {
        let var_coupler = if self.noise.noise_rms() > 0.0 {
            let sq_in = inputs.mapv(|x| x * x);
            let sq_w = weights.mapv(|w| w * w);
            Some(if rev {
                sq_in.dot(&sq_w.t())
            } else {
                sq_in.dot(&sq_w)
            })
        } else {
            None
        };
        self.latch_batch_rows(fields, bias, var_coupler.as_ref(), rngs);
    }

    /// Stochastic tail of the per-row-stream batched node path, over
    /// precomputed fields: bias add, then for each row — coupler-noise
    /// perturbation (when `var_coupler` is given) and the
    /// sigmoid/comparator latch, drawing exclusively from that row's
    /// stream. The packed-kernel substrates call this directly with
    /// fields (and variances) produced by
    /// [`crate::kernels::binary_gemm`].
    pub(crate) fn latch_batch_rows(
        &self,
        fields: &mut Array2<f64>,
        bias: &ArrayView1<'_, f64>,
        var_coupler: Option<&Array2<f64>>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) {
        assert_eq!(fields.nrows(), rngs.len(), "one RNG stream per row");
        for (i, mut row) in fields.axis_iter_mut(ndarray::Axis(0)).enumerate() {
            row += bias;
            let rng = &mut *rngs[i];
            if let Some(var) = var_coupler {
                for (j, f) in row.iter_mut().enumerate() {
                    let sigma = (var[[i, j]] + 1.0).sqrt(); // +1: unit-scale node noise
                    *f = self.noise.perturb(*f, sigma, rng);
                }
            }
            for f in row.iter_mut() {
                let p = self.sigmoid.transfer(*f);
                *f = if self.comparator.sample(p, &self.thermal, rng) {
                    1.0
                } else {
                    0.0
                };
            }
        }
    }

    /// Stochastic tail of the serial per-chain node path, over a field
    /// row precomputed by `kernels::binary_field_row`: bias add, then
    /// coupler-noise perturbation (when `var` is given) over the whole
    /// row, then the sigmoid/comparator latch — the exact arithmetic
    /// *and RNG draw order* of
    /// [`AnalogSampler::sample_layer_reference`]'s tail (all
    /// perturbations before any comparator draw), so a serial chain's
    /// bits are invariant to which field kernel produced the row.
    pub(crate) fn latch_row(
        &self,
        field: &mut Array1<f64>,
        bias: &ArrayView1<'_, f64>,
        var: Option<&Array1<f64>>,
        rng: &mut dyn rand::RngCore,
    ) {
        for (f, &b) in field.iter_mut().zip(bias.iter()) {
            *f += b;
        }
        if let Some(var) = var {
            for (f, &v) in field.iter_mut().zip(var.iter()) {
                let sigma = (v + 1.0).sqrt(); // +1: unit-scale node noise
                *f = self.noise.perturb(*f, sigma, rng);
            }
        }
        for f in field.iter_mut() {
            let p = self.sigmoid.transfer(*f);
            *f = if self.comparator.sample(p, &self.thermal, rng) {
                1.0
            } else {
                0.0
            };
        }
    }

    /// Shared tail of the batched node path: computes the closed-form
    /// coupler-noise variance from the raw operands, then runs
    /// [`AnalogSampler::latch_batch`].
    fn finish_batch<R: Rng + ?Sized>(
        &self,
        fields: &mut Array2<f64>,
        bias: &ArrayView1<'_, f64>,
        weights: &ndarray::ArrayView2<'_, f64>,
        inputs: &Array2<f64>,
        rev: bool,
        rng: &mut R,
    ) {
        let var_coupler = if self.noise.noise_rms() > 0.0 {
            let sq_in = inputs.mapv(|x| x * x);
            let sq_w = weights.mapv(|w| w * w);
            Some(if rev {
                sq_in.dot(&sq_w.t())
            } else {
                sq_in.dot(&sq_w)
            })
        } else {
            None
        };
        self.latch_batch(fields, bias, var_coupler.as_ref(), rng);
    }

    /// Stochastic tail of the batched node path, over precomputed
    /// fields: bias add, closed-form coupler-noise perturbation (when
    /// `var_coupler` is given), sigmoid transfer, comparator latch —
    /// all element-wise over the field matrix in row-major order. The
    /// packed-kernel substrates call this directly with fields (and
    /// variances) produced by [`crate::kernels::binary_gemm`].
    pub(crate) fn latch_batch<R: Rng + ?Sized>(
        &self,
        fields: &mut Array2<f64>,
        bias: &ArrayView1<'_, f64>,
        var_coupler: Option<&Array2<f64>>,
        rng: &mut R,
    ) {
        for mut row in fields.axis_iter_mut(ndarray::Axis(0)) {
            row += bias;
        }
        if let Some(var) = var_coupler {
            for (f, v) in fields.iter_mut().zip(var.iter()) {
                let sigma = (v + 1.0).sqrt(); // +1: unit-scale node noise
                *f = self.noise.perturb(*f, sigma, rng);
            }
        }
        for f in fields.iter_mut() {
            let p = self.sigmoid.transfer(*f);
            *f = if self.comparator.sample(p, &self.thermal, rng) {
                1.0
            } else {
                0.0
            };
        }
    }

    /// Row-at-a-time reference node path with straightforward scalar
    /// kernels (per-element accumulation vector-matrix product): a
    /// faithful reimplementation of the seed's row-at-a-time strategy,
    /// kept as the measured baseline of `GsEngine::SerialReference` and
    /// the `bench_pr1` harness. Its measured epoch time matches the
    /// seed path as first built (before the vendored GEMM kernels were
    /// unrolled and blocked): ~41 ms for a 784×200 batch-64 CD-1 epoch
    /// on the reference box in both cases. Statistically identical to
    /// [`AnalogSampler::sample_layer`] / [`AnalogSampler::sample_layer_rev`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sample_layer_reference<R: Rng + ?Sized>(
        &self,
        weights: &ndarray::ArrayView2<'_, f64>,
        bias: &ArrayView1<'_, f64>,
        input: &ArrayView1<'_, f64>,
        rev: bool,
        rng: &mut R,
    ) -> Array1<f64> {
        let (rows, cols) = (weights.nrows(), weights.ncols());
        let (fan_in, out) = if rev { (cols, rows) } else { (rows, cols) };
        assert_eq!(fan_in, input.len(), "fan-in mismatch (reference)");
        assert_eq!(out, bias.len(), "fan-out mismatch (reference)");
        let at = |i: usize, j: usize| {
            if rev {
                weights[[j, i]]
            } else {
                weights[[i, j]]
            }
        };
        let mut field = Array1::zeros(out);
        for j in 0..out {
            field[j] = (0..fan_in).map(|i| at(i, j) * input[i]).sum::<f64>() + bias[j];
        }
        if self.noise.noise_rms() > 0.0 {
            for j in 0..out {
                let var_coupler: f64 = (0..fan_in)
                    .map(|i| {
                        let c = at(i, j) * input[i];
                        c * c
                    })
                    .sum();
                let sigma = (var_coupler + 1.0).sqrt();
                field[j] = self.noise.perturb(field[j], sigma, rng);
            }
        }
        field.mapv(|x| {
            let p = self.sigmoid.transfer(x);
            if self.comparator.sample(p, &self.thermal, rng) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Deterministic variant of the weight matrix under frozen variation:
    /// helper re-exported for the accelerators.
    pub fn apply_variation(
        weights: &Array2<f64>,
        variation: &ember_analog::VariationMap,
    ) -> Array2<f64> {
        variation.apply(weights)
    }
}

impl Default for AnalogSampler {
    fn default() -> Self {
        AnalogSampler::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_rbm::math::sigmoid;
    use ndarray::{arr1, arr2};
    use rand::SeedableRng;

    #[test]
    fn ideal_sampler_matches_software_probabilities() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sampler = AnalogSampler::ideal();
        let w = arr2(&[[0.8], [-0.3]]);
        let bias = arr1(&[0.2]);
        let v = arr1(&[1.0, 1.0]);
        let expected = sigmoid(0.8 - 0.3 + 0.2);
        let trials = 20000;
        let ones: f64 = (0..trials)
            .map(|_| sampler.sample_layer(&w.view(), &bias.view(), &v.view(), &mut rng)[0])
            .sum();
        let freq = ones / trials as f64;
        assert!((freq - expected).abs() < 0.01, "freq {freq} vs {expected}");
    }

    #[test]
    fn reverse_direction_matches_forward_semantics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sampler = AnalogSampler::ideal();
        // (2 visible × 1 hidden); drive hidden=1, sample visible.
        let w = arr2(&[[1.5], [-2.0]]);
        let bv = arr1(&[0.1, 0.4]);
        let h = arr1(&[1.0]);
        let trials = 20000;
        let mut sums = [0.0; 2];
        for _ in 0..trials {
            let v = sampler.sample_layer_rev(&w.view(), &bv.view(), &h.view(), &mut rng);
            sums[0] += v[0];
            sums[1] += v[1];
        }
        assert!((sums[0] / trials as f64 - sigmoid(1.5 + 0.1)).abs() < 0.01);
        assert!((sums[1] / trials as f64 - sigmoid(-2.0 + 0.4)).abs() < 0.01);
    }

    #[test]
    fn noise_spreads_fields() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let noisy = AnalogSampler::new(
            SigmoidUnit::ideal(),
            Comparator::ideal(),
            NoiseModel::new(0.0, 0.2).unwrap(),
        );
        let w = arr2(&[[1.0], [1.0]]);
        let bias = arr1(&[0.0]);
        let v = arr1(&[1.0, 1.0]);
        let fields: Vec<f64> = (0..500)
            .map(|_| noisy.fields(&w.view(), &bias.view(), &v.view(), &mut rng)[0])
            .collect();
        let mean = fields.iter().sum::<f64>() / fields.len() as f64;
        let var = fields.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / fields.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        // σ = 0.2·sqrt(1²+1²+1) = 0.2·√3 ≈ 0.346
        assert!((var.sqrt() - 0.346).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn noiseless_fields_are_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sampler = AnalogSampler::ideal();
        let w = arr2(&[[0.5, -1.0], [2.0, 0.25]]);
        let bias = arr1(&[0.1, -0.1]);
        let v = arr1(&[1.0, 0.0]);
        let f = sampler.fields(&w.view(), &bias.view(), &v.view(), &mut rng);
        assert!((f[0] - 0.6).abs() < 1e-12);
        assert!((f[1] - (-1.1)).abs() < 1e-12);
    }

    #[test]
    fn batch_rows_output_is_invariant_to_co_batched_rows() {
        // Row 1 of a 3-row batch must equal the same row sampled alone
        // under the same stream — the coalescing-invisibility contract —
        // including with dynamic noise enabled.
        let sampler = AnalogSampler::new(
            SigmoidUnit::ideal(),
            Comparator::ideal(),
            NoiseModel::new(0.05, 0.1).unwrap(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        use rand::Rng as _;
        let w = Array2::from_shape_fn((6, 4), |_| rng.random_range(-0.5..0.5));
        let bias = arr1(&[0.1, -0.2, 0.0, 0.3]);
        for rev in [false, true] {
            let fan_in = if rev { 4 } else { 6 };
            let inputs = Array2::from_shape_fn((3, fan_in), |_| f64::from(rng.random_bool(0.5)));
            let sample = |rows: &Array2<f64>, seeds: &[u64]| {
                let mut rngs: Vec<rand::rngs::StdRng> = seeds
                    .iter()
                    .map(|&s| rand::rngs::StdRng::seed_from_u64(s))
                    .collect();
                let mut dyn_rngs: Vec<&mut dyn rand::RngCore> = rngs
                    .iter_mut()
                    .map(|r| r as &mut dyn rand::RngCore)
                    .collect();
                if rev {
                    let b = arr1(&[0.0; 6]);
                    sampler.sample_layer_rev_batch_rows(&w.view(), &b.view(), rows, &mut dyn_rngs)
                } else {
                    sampler.sample_layer_batch_rows(&w.view(), &bias.view(), rows, &mut dyn_rngs)
                }
            };
            let full = sample(&inputs, &[7, 8, 9]);
            let solo = sample(&inputs.slice(ndarray::s![1..2, ..]).to_owned(), &[8]);
            assert_eq!(full.row(1), solo.row(0), "rev={rev}");
        }
    }

    #[test]
    fn samples_are_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sampler = AnalogSampler::ideal();
        let w = arr2(&[[0.1, 0.2, -0.1], [0.0, 0.5, 0.3]]);
        let bias = arr1(&[0.0, 0.0, 0.0]);
        let v = arr1(&[1.0, 1.0]);
        for _ in 0..50 {
            let h = sampler.sample_layer(&w.view(), &bias.view(), &v.view(), &mut rng);
            assert!(h.iter().all(|&x| x == 0.0 || x == 1.0));
        }
    }
}
