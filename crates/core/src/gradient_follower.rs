use ndarray::{Array1, Array2};
use rand::Rng;

use ember_analog::{Adc, ChargePump, Comparator, Dtc, VariationMap};
use ember_rbm::Rbm;

use crate::{AnalogSampler, BgfConfig, HardwareCounters};

/// The Boltzmann gradient follower of §3.3: training happens entirely
/// inside the augmented Ising substrate.
///
/// Every parameter is a *differential* pair of coupler gate voltages,
/// `W = s · (V⁺ − V⁻)` (Fig. 14), adjusted in place by charge-pump packets
/// gated on the digital product `vᵢ·hⱼ`. Biases are couplers to a
/// constant-1 node (Fig. 3's clamp-unit row). The training step implements
/// Eq. 12 with its three deviations from Algorithm 1:
///
/// 1. **mid-step updates** — the positive packet lands *before* the
///    negative phase runs, so negative samples are taken under `Wᵗ⁺¹ᐟ²`;
/// 2. **hardware transfer `f_ij`** — packet size shrinks near the rails and
///    carries per-device variation;
/// 3. **minibatch 1** — every sample updates the weights immediately, with
///    the small learning rate set by the pump ratio.
///
/// Negative phases persist across samples through `p` particles
/// (Tieleman-style), exactly as the architecture stores hidden states
/// (§3.3 step 4).
///
/// # Example
///
/// ```
/// use ember_core::{BgfConfig, BoltzmannGradientFollower};
/// use ember_rbm::Rbm;
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let init = Rbm::random(4, 2, 0.01, &mut rng);
/// let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
/// let data = Array2::from_shape_fn((10, 4), |(i, _)| (i % 2) as f64);
/// bgf.train_epoch(&data, &mut rng);
/// assert!(bgf.counters().weight_update_events > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BoltzmannGradientFollower {
    config: BgfConfig,
    // Differential gate voltages for the weight couplers (m × n).
    v_pos: Array2<f64>,
    v_neg: Array2<f64>,
    // Bias couplers (visible side m, hidden side n), also differential.
    bv_pos: Array1<f64>,
    bv_neg: Array1<f64>,
    bh_pos: Array1<f64>,
    bh_neg: Array1<f64>,
    // Frozen conductance variation of the two coupler banks.
    cond_var_pos: VariationMap,
    cond_var_neg: VariationMap,
    // Frozen per-device charge-pump speed factors.
    pump_factor_pos: Array2<f64>,
    pump_factor_neg: Array2<f64>,
    sampler: AnalogSampler,
    dtc: Dtc,
    particles: Array2<f64>,
    next_particle: usize,
    counters: HardwareCounters,
}

impl BoltzmannGradientFollower {
    /// Initializes the machine from a host-provided RBM (§3.3 step 1) and
    /// freezes all per-device variation ("fabrication").
    pub fn new<R: Rng + ?Sized>(init: Rbm, config: BgfConfig, rng: &mut R) -> Self {
        let (m, n) = init.weights().dim();
        let s = config.weight_scale();
        let split = |w: f64| -> (f64, f64) {
            // W = s (V+ − V−) with V+ + V− = 1 at program time.
            let d = (w / s).clamp(-1.0, 1.0) / 2.0;
            (0.5 + d, 0.5 - d)
        };
        let mut v_pos = Array2::zeros((m, n));
        let mut v_neg = Array2::zeros((m, n));
        for i in 0..m {
            for j in 0..n {
                let (p, q) = split(init.weights()[[i, j]]);
                v_pos[[i, j]] = p;
                v_neg[[i, j]] = q;
            }
        }
        let split_vec = |b: &Array1<f64>| -> (Array1<f64>, Array1<f64>) {
            let mut p = Array1::zeros(b.len());
            let mut q = Array1::zeros(b.len());
            for (k, &x) in b.iter().enumerate() {
                let (a, c) = split(x);
                p[k] = a;
                q[k] = c;
            }
            (p, q)
        };
        let (bv_pos, bv_neg) = split_vec(init.visible_bias());
        let (bh_pos, bh_neg) = split_vec(init.hidden_bias());

        let noise = config.noise();
        let cond_var_pos = noise.sample_variation((m, n), rng);
        let cond_var_neg = noise.sample_variation((m, n), rng);
        let sample_factors = |rng: &mut R| -> Array2<f64> {
            noise
                .sample_variation((m, n), rng)
                .factors()
                .mapv(|f| f.clamp(0.05, 2.0))
        };
        let pump_factor_pos = sample_factors(rng);
        let pump_factor_neg = sample_factors(rng);

        let particles = Array2::from_shape_fn((config.particles(), n), |_| {
            if rng.random_bool(0.5) {
                1.0
            } else {
                0.0
            }
        });

        let sampler = AnalogSampler::new(config.sigmoid(), Comparator::ideal(), noise);
        let dtc = Dtc::new(config.dtc_bits(), 0.0).expect("validated bits");

        let mut counters = HardwareCounters::new();
        // Host streams the initial parameters once.
        counters.host_words_transferred += (m * n + m + n) as u64;

        BoltzmannGradientFollower {
            config,
            v_pos,
            v_neg,
            bv_pos,
            bv_neg,
            bh_pos,
            bh_neg,
            cond_var_pos,
            cond_var_neg,
            pump_factor_pos,
            pump_factor_neg,
            sampler,
            dtc,
            particles,
            next_particle: 0,
            counters,
        }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &BgfConfig {
        &self.config
    }

    /// Cumulative hardware event counters.
    pub fn counters(&self) -> &HardwareCounters {
        &self.counters
    }

    /// The persistent particles' hidden states (`p × n`).
    pub fn particles(&self) -> &Array2<f64> {
        &self.particles
    }

    /// The distribution the machine *actually* embodies right now: weights
    /// with conductance variation applied. Use this for learning-quality
    /// evaluation (the machine's own samples follow these parameters).
    pub fn effective_rbm(&self) -> Rbm {
        let s = self.config.weight_scale();
        let w = (self.cond_var_pos.factors() * &self.v_pos
            - self.cond_var_neg.factors() * &self.v_neg)
            * s;
        let bv = (&self.bv_pos - &self.bv_neg) * s;
        let bh = (&self.bh_pos - &self.bh_neg) * s;
        Rbm::from_parts(w, bv, bh).expect("dimensions consistent by construction")
    }

    /// Final ADC read-out (§3.3 step 6): the host reads the coupler control
    /// voltages one column at a time through 8-bit ADCs and reconstructs
    /// `W = s (V⁺ − V⁻)`. The host cannot see the per-device variation, so
    /// the returned weights differ from [`Self::effective_rbm`] by both the
    /// quantization error and the variation.
    pub fn read_out<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Rbm {
        let adc = Adc::new(self.config.adc_bits(), 0.0).expect("validated bits");
        let s = self.config.weight_scale();
        let (m, n) = self.v_pos.dim();
        let mut w = Array2::zeros((m, n));
        for i in 0..m {
            for j in 0..n {
                let p = adc.read(self.v_pos[[i, j]], 0.0, 1.0, rng);
                let q = adc.read(self.v_neg[[i, j]], 0.0, 1.0, rng);
                w[[i, j]] = s * (p - q);
            }
        }
        let read_vec = |pos: &Array1<f64>, neg: &Array1<f64>, rng: &mut R| -> Array1<f64> {
            let mut out = Array1::zeros(pos.len());
            for k in 0..pos.len() {
                let p = adc.read(pos[k], 0.0, 1.0, rng);
                let q = adc.read(neg[k], 0.0, 1.0, rng);
                out[k] = s * (p - q);
            }
            out
        };
        let bv = read_vec(&self.bv_pos, &self.bv_neg, rng);
        let bh = read_vec(&self.bh_pos, &self.bh_neg, rng);
        self.counters.host_words_transferred += (2 * (m * n + m + n)) as u64;
        Rbm::from_parts(w, bv, bh).expect("dimensions consistent by construction")
    }

    fn effective_weights(&self) -> Array2<f64> {
        (self.cond_var_pos.factors() * &self.v_pos - self.cond_var_neg.factors() * &self.v_neg)
            * self.config.weight_scale()
    }

    fn effective_bv(&self) -> Array1<f64> {
        (&self.bv_pos - &self.bv_neg) * self.config.weight_scale()
    }

    fn effective_bh(&self) -> Array1<f64> {
        (&self.bh_pos - &self.bh_neg) * self.config.weight_scale()
    }

    /// Applies one gated charge-pump update to every coupler where
    /// `vᵢ·hⱼ = 1`. `positive` selects the phase (Fig. 14's timing):
    /// positive increments `V⁺`/decrements `V⁻`, negative the reverse.
    fn gated_update(&mut self, v: &Array1<f64>, h: &Array1<f64>, positive: bool) {
        let r = self.config.pump_ratio();
        let v_on: Vec<usize> = v
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| (x >= 0.5).then_some(i))
            .collect();
        let h_on: Vec<usize> = h
            .iter()
            .enumerate()
            .filter_map(|(j, &x)| (x >= 0.5).then_some(j))
            .collect();
        for &i in &v_on {
            for &j in &h_on {
                let pump_p = ChargePump::with_device_factor(r, self.pump_factor_pos[[i, j]])
                    .expect("factors pre-clamped");
                let pump_n = ChargePump::with_device_factor(r, self.pump_factor_neg[[i, j]])
                    .expect("factors pre-clamped");
                if positive {
                    self.v_pos[[i, j]] = pump_p.increment(self.v_pos[[i, j]]);
                    self.v_neg[[i, j]] = pump_n.decrement(self.v_neg[[i, j]]);
                } else {
                    self.v_pos[[i, j]] = pump_p.decrement(self.v_pos[[i, j]]);
                    self.v_neg[[i, j]] = pump_n.increment(self.v_neg[[i, j]]);
                }
                self.counters.weight_update_events += 1;
            }
        }
        // Bias couplers: gated against the constant-1 node.
        let pump = ChargePump::new(r).expect("validated ratio");
        for &i in &v_on {
            if positive {
                self.bv_pos[i] = pump.increment(self.bv_pos[i]);
                self.bv_neg[i] = pump.decrement(self.bv_neg[i]);
            } else {
                self.bv_pos[i] = pump.decrement(self.bv_pos[i]);
                self.bv_neg[i] = pump.increment(self.bv_neg[i]);
            }
            self.counters.weight_update_events += 1;
        }
        for &j in &h_on {
            if positive {
                self.bh_pos[j] = pump.increment(self.bh_pos[j]);
                self.bh_neg[j] = pump.decrement(self.bh_neg[j]);
            } else {
                self.bh_pos[j] = pump.decrement(self.bh_pos[j]);
                self.bh_neg[j] = pump.increment(self.bh_neg[j]);
            }
            self.counters.weight_update_events += 1;
        }
    }

    /// One full learning step on one training vector (§3.3 steps 2–5).
    pub fn train_sample<R: Rng + ?Sized>(&mut self, v: &Array1<f64>, rng: &mut R) {
        assert_eq!(v.len(), self.v_pos.nrows(), "sample width mismatch");
        // Step 2: host sends the sample to the visible latches.
        self.counters.host_words_transferred += v.len() as u64;
        let v_clamped = v.mapv(|x| self.dtc.convert(x));

        // Step 3: positive phase under Wᵗ — clamp, settle, sample h⁺.
        let w_eff = self.effective_weights();
        let bh_eff = self.effective_bh();
        let h_pos =
            self.sampler
                .sample_layer(&w_eff.view(), &bh_eff.view(), &v_clamped.view(), rng);
        self.counters.positive_samples += 1;
        self.counters.phase_points += self.config.settle_phase_points();

        // ⟨v h⟩_s+ increments W_ij immediately (mid-step update, Eq. 12).
        self.gated_update(&v_clamped, &h_pos, true);

        // Step 4: load a particle and anneal under Wᵗ⁺¹ᐟ².
        let w_eff = self.effective_weights();
        let bv_eff = self.effective_bv();
        let bh_eff = self.effective_bh();
        let l = self.next_particle;
        self.next_particle = (self.next_particle + 1) % self.particles.nrows();
        let mut h_neg = self.particles.row(l).to_owned();
        let mut v_neg = Array1::zeros(v.len());
        for _ in 0..self.config.negative_sweeps() {
            v_neg =
                self.sampler
                    .sample_layer_rev(&w_eff.view(), &bv_eff.view(), &h_neg.view(), rng);
            h_neg = self
                .sampler
                .sample_layer(&w_eff.view(), &bh_eff.view(), &v_neg.view(), rng);
        }
        self.counters.negative_samples += 1;
        self.counters.phase_points += self.config.anneal_phase_points();
        // Store the hidden state back for persistence.
        self.particles.row_mut(l).assign(&h_neg);

        // Step 5: ⟨v h⟩_s− decrements W_ij.
        self.gated_update(&v_neg, &h_neg, false);
    }

    /// One pass over the dataset with the effective minibatch of 1.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the machine's visible count.
    pub fn train_epoch<R: Rng + ?Sized>(&mut self, data: &Array2<f64>, rng: &mut R) {
        assert_eq!(data.ncols(), self.v_pos.nrows(), "data width mismatch");
        for row in data.rows() {
            let v = row.to_owned();
            self.train_sample(&v, rng);
        }
    }

    /// Substrate inference: clamp a visible vector, settle, return the
    /// hidden sample — the inference path the paper notes Ising machines
    /// support "in a straightforward manner" (§2.3).
    pub fn infer_hidden<R: Rng + ?Sized>(&mut self, v: &Array1<f64>, rng: &mut R) -> Array1<f64> {
        let v_clamped = v.mapv(|x| self.dtc.convert(x));
        let w_eff = self.effective_weights();
        let bh_eff = self.effective_bh();
        let h = self
            .sampler
            .sample_layer(&w_eff.view(), &bh_eff.view(), &v_clamped.view(), rng);
        self.counters.phase_points += self.config.settle_phase_points();
        self.counters.host_words_transferred += (v.len() + h.len()) as u64;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_analog::NoiseModel;
    use rand::SeedableRng;

    fn two_mode_data(rows: usize, m: usize) -> Array2<f64> {
        Array2::from_shape_fn((rows, m), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 })
    }

    fn fast_config() -> BgfConfig {
        // Larger packets so tests converge in few epochs.
        BgfConfig::default().with_pump_ratio(1.0 / 256.0)
    }

    #[test]
    fn bgf_improves_likelihood() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let init = Rbm::random(8, 4, 0.01, &mut rng);
        let data = two_mode_data(40, 8);
        let before = ember_rbm::exact::mean_log_likelihood(&init, &data);
        let mut bgf = BoltzmannGradientFollower::new(init, fast_config(), &mut rng);
        for _ in 0..40 {
            bgf.train_epoch(&data, &mut rng);
        }
        let after = ember_rbm::exact::mean_log_likelihood(&bgf.effective_rbm(), &data);
        assert!(after > before + 1.0, "LL {before} -> {after}");
    }

    #[test]
    fn noisy_bgf_still_learns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let init = Rbm::random(8, 4, 0.01, &mut rng);
        let data = two_mode_data(40, 8);
        let before = ember_rbm::exact::mean_log_likelihood(&init, &data);
        let config = fast_config().with_noise(NoiseModel::new(0.1, 0.1).unwrap());
        let mut bgf = BoltzmannGradientFollower::new(init, config, &mut rng);
        for _ in 0..40 {
            bgf.train_epoch(&data, &mut rng);
        }
        let after = ember_rbm::exact::mean_log_likelihood(&bgf.effective_rbm(), &data);
        assert!(after > before + 0.5, "LL {before} -> {after}");
    }

    #[test]
    fn voltages_stay_within_rails() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let init = Rbm::random(5, 3, 0.5, &mut rng);
        let config = BgfConfig::default().with_pump_ratio(0.25);
        let mut bgf = BoltzmannGradientFollower::new(init, config, &mut rng);
        let data = two_mode_data(30, 5);
        for _ in 0..5 {
            bgf.train_epoch(&data, &mut rng);
        }
        let ok = |x: &f64| (0.0..=1.0).contains(x);
        assert!(bgf.v_pos.iter().all(ok));
        assert!(bgf.v_neg.iter().all(ok));
        assert!(bgf.bv_pos.iter().all(ok));
        assert!(bgf.bh_neg.iter().all(ok));
    }

    #[test]
    fn readout_approximates_effective_weights_when_clean() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let init = Rbm::random(4, 3, 0.3, &mut rng);
        let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
        let data = two_mode_data(8, 4);
        bgf.train_epoch(&data, &mut rng);
        let exact = bgf.effective_rbm();
        let read = bgf.read_out(&mut rng);
        // No variation configured, so read-out differs only by ADC LSBs.
        let s = bgf.config().weight_scale();
        let lsb = 2.0 * s / 255.0;
        for (a, b) in exact.weights().iter().zip(read.weights().iter()) {
            assert!(
                (a - b).abs() <= lsb,
                "adc error {} > lsb {lsb}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn particles_persist_and_update() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let init = Rbm::random(6, 3, 0.2, &mut rng);
        let config = BgfConfig::default().with_particles(3);
        let mut bgf = BoltzmannGradientFollower::new(init, config, &mut rng);
        let before = bgf.particles().clone();
        let data = two_mode_data(9, 6);
        bgf.train_epoch(&data, &mut rng);
        assert_eq!(bgf.particles().dim(), (3, 3));
        assert_ne!(&before, bgf.particles());
        assert!(bgf.particles().iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn counters_reflect_minibatch_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let init = Rbm::random(4, 2, 0.01, &mut rng);
        let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
        let data = two_mode_data(7, 4);
        bgf.train_epoch(&data, &mut rng);
        assert_eq!(bgf.counters().positive_samples, 7);
        assert_eq!(bgf.counters().negative_samples, 7);
        // Phase points: 7 × (settle 50 + anneal 100).
        assert_eq!(bgf.counters().phase_points, 7 * 150);
        // Host never performs gradient MACs in BGF.
        assert_eq!(bgf.counters().host_mac_ops, 0);
    }

    #[test]
    fn midstep_update_changes_weights_between_phases() {
        // After a positive phase on an all-ones sample, every coupler in
        // the on-row must have moved before the negative phase is taken.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let init = Rbm::new(3, 2);
        let config = BgfConfig::default().with_pump_ratio(0.1);
        let mut bgf = BoltzmannGradientFollower::new(init, config, &mut rng);
        let w_before = bgf.effective_weights();
        let v = Array1::ones(3);
        // Force h=1 via huge hidden bias.
        bgf.bh_pos.fill(1.0);
        bgf.bh_neg.fill(0.0);
        bgf.train_sample(&v, &mut rng);
        let w_after = bgf.effective_weights();
        assert_ne!(w_before, w_after);
    }

    #[test]
    fn inference_path_counts_phase_points() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let init = Rbm::random(4, 2, 0.1, &mut rng);
        let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
        let v = Array1::ones(4);
        let before = bgf.counters().phase_points;
        let h = bgf.infer_hidden(&v, &mut rng);
        assert_eq!(h.len(), 2);
        assert_eq!(bgf.counters().phase_points, before + 50);
    }
}
