use ndarray::{Array2, ArrayView1, ArrayView2};
use rand::RngCore;

use ember_brim::{BipartiteBrim, BrimConfig, FlipSchedule};
use ember_ising::BipartiteProblem;
use ember_rbm::Rbm;
use ember_substrate::{HardwareCounters, Substrate};

use crate::kernels::BitMatrix;

/// The bipartite BRIM of §3.1/Fig. 3 driven as a conditional sampler:
/// clamp units hold one side at its data rails, the free side's coupled
/// ring oscillators evolve under constant flip injection (the thermal
/// bath of §3.3 — "the substrate directly embodies Boltzmann
/// statistics"), and the read-out thresholds the settled node voltages.
///
/// Unlike [`super::SoftwareGibbs`], no sigmoid is ever evaluated: the
/// sampling *is* the dynamics. The flip probability sets the effective
/// temperature of the bath; [`BrimSubstrate::with_thermal_bath`] exposes
/// it together with the per-sample anneal length (phase points).
///
/// Node voltages persist between calls, so consecutive samples continue
/// one physical trajectory — exactly how the hardware behaves between
/// `CLK` edges.
///
/// # Example
///
/// ```
/// use ember_core::substrate::{BrimSubstrate, Substrate};
/// use ember_brim::BrimConfig;
/// use ember_rbm::Rbm;
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let rbm = Rbm::random(4, 2, 0.5, &mut rng);
/// let mut sub = BrimSubstrate::for_rbm(&rbm, BrimConfig::default());
/// let v = Array2::from_elem((2, 4), 1.0);
/// let h = sub.sample_hidden_batch(&v, &mut rng);
/// assert!(h.iter().all(|&x| x == 0.0 || x == 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct BrimSubstrate {
    brim: BipartiteBrim,
    flip_probability: f64,
    anneal_steps: usize,
    counters: HardwareCounters,
}

impl BrimSubstrate {
    /// Default thermal bath: the flip rate/length pair under which the
    /// free-running machine's visible histogram tracks the Boltzmann
    /// distribution in the §3.3 sampling experiment.
    const DEFAULT_FLIP: f64 = 0.02;
    const DEFAULT_STEPS: usize = 120;

    /// Programs `problem` onto a fresh machine.
    pub fn new(problem: BipartiteProblem, config: BrimConfig) -> Self {
        BrimSubstrate {
            brim: BipartiteBrim::new(problem, config),
            flip_probability: Self::DEFAULT_FLIP,
            anneal_steps: Self::DEFAULT_STEPS,
            counters: HardwareCounters::new(),
        }
    }

    /// Fabricates a machine sized for (and programmed with) `rbm`.
    pub fn for_rbm(rbm: &Rbm, config: BrimConfig) -> Self {
        BrimSubstrate::new(rbm.to_bipartite(), config)
    }

    /// Returns a copy with the given thermal bath: per-sample flip
    /// probability and anneal length in phase points.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < flip_probability <= 1` and `anneal_steps >= 1`.
    #[must_use]
    pub fn with_thermal_bath(mut self, flip_probability: f64, anneal_steps: usize) -> Self {
        assert!(
            flip_probability > 0.0 && flip_probability <= 1.0,
            "flip probability must be in (0, 1]"
        );
        assert!(anneal_steps >= 1, "need at least one anneal step");
        self.flip_probability = flip_probability;
        self.anneal_steps = anneal_steps;
        self
    }

    /// The underlying machine (node voltages, programmed problem).
    pub fn brim(&self) -> &BipartiteBrim {
        &self.brim
    }

    fn thermal_schedule(&self) -> FlipSchedule {
        FlipSchedule::constant(self.flip_probability, self.anneal_steps)
    }
}

impl Substrate for BrimSubstrate {
    fn name(&self) -> &'static str {
        "brim"
    }

    fn visible_len(&self) -> usize {
        self.brim.problem().visible_len()
    }

    fn hidden_len(&self) -> usize {
        self.brim.problem().hidden_len()
    }

    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) {
        let problem = BipartiteProblem::new(
            weights.to_owned(),
            visible_bias.to_owned(),
            hidden_bias.to_owned(),
        )
        .expect("consistent weight/bias dimensions");
        self.brim.reprogram(problem);
        self.counters.host_words_transferred += self.programming_cost();
    }

    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        let (m, n) = (self.visible_len(), self.hidden_len());
        assert_eq!(visible.ncols(), m, "visible clamp width mismatch");
        let schedule = self.thermal_schedule();
        // Each settled read-out thresholds straight into one packed
        // row — no per-read `Vec<bool>`; the dense `f64` matrix the
        // Substrate API exchanges is materialized once at the end.
        let mut out = BitMatrix::zeros(visible.nrows(), n);
        let mut levels = vec![0.0; m];
        for (r, row) in visible.rows().enumerate() {
            for (level, &x) in levels.iter_mut().zip(row.iter()) {
                *level = x;
            }
            self.brim.clamp_visible(&levels);
            self.brim.anneal(&schedule, rng);
            self.brim.read_hidden_packed(out.row_words_mut(r));
        }
        self.counters.packed_kernel_calls += 1;
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        self.counters.phase_points += (visible.nrows() * self.anneal_steps) as u64;
        self.counters.host_words_transferred += (visible.nrows() * n) as u64;
        out.to_dense()
    }

    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        let (m, n) = (self.visible_len(), self.hidden_len());
        assert_eq!(hidden.ncols(), n, "hidden clamp width mismatch");
        let schedule = self.thermal_schedule();
        let mut out = BitMatrix::zeros(hidden.nrows(), m);
        let mut levels = vec![0.0; n];
        for (r, row) in hidden.rows().enumerate() {
            for (level, &x) in levels.iter_mut().zip(row.iter()) {
                *level = x;
            }
            self.brim.clamp_hidden(&levels);
            self.brim.anneal(&schedule, rng);
            self.brim.read_visible_packed(out.row_words_mut(r));
        }
        self.counters.packed_kernel_calls += 1;
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        self.counters.phase_points += (hidden.nrows() * self.anneal_steps) as u64;
        self.counters.host_words_transferred += (hidden.nrows() * m) as u64;
        out.to_dense()
    }

    fn sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        let (m, n) = (self.visible_len(), self.hidden_len());
        assert_eq!(visible.ncols(), m, "visible clamp width mismatch");
        assert_eq!(visible.nrows(), rngs.len(), "one RNG stream per row");
        let schedule = self.thermal_schedule();
        let mut out = BitMatrix::zeros(visible.nrows(), n);
        let mut levels = vec![0.0; m];
        for (r, row) in visible.rows().enumerate() {
            for (level, &x) in levels.iter_mut().zip(row.iter()) {
                *level = x;
            }
            // Serving semantics: every row is an independent trajectory
            // from the machine's power-on state, so its read-out depends
            // only on (programmed model, clamp, own stream) — never on
            // the previous tenant of this replica. The plain batch
            // methods above keep the §3 continuous physical trajectory.
            self.brim.reset_voltages();
            self.brim.clamp_visible(&levels);
            self.brim.anneal(&schedule, &mut *rngs[r]);
            self.brim.read_hidden_packed(out.row_words_mut(r));
        }
        self.counters.packed_kernel_calls += 1;
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        self.counters.phase_points += (visible.nrows() * self.anneal_steps) as u64;
        self.counters.host_words_transferred += (visible.nrows() * n) as u64;
        out.to_dense()
    }

    fn sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        let (m, n) = (self.visible_len(), self.hidden_len());
        assert_eq!(hidden.ncols(), n, "hidden clamp width mismatch");
        assert_eq!(hidden.nrows(), rngs.len(), "one RNG stream per row");
        let schedule = self.thermal_schedule();
        let mut out = BitMatrix::zeros(hidden.nrows(), m);
        let mut levels = vec![0.0; n];
        for (r, row) in hidden.rows().enumerate() {
            for (level, &x) in levels.iter_mut().zip(row.iter()) {
                *level = x;
            }
            self.brim.reset_voltages();
            self.brim.clamp_hidden(&levels);
            self.brim.anneal(&schedule, &mut *rngs[r]);
            self.brim.read_visible_packed(out.row_words_mut(r));
        }
        self.counters.packed_kernel_calls += 1;
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        self.counters.phase_points += (hidden.nrows() * self.anneal_steps) as u64;
        self.counters.host_words_transferred += (hidden.nrows() * m) as u64;
        out.to_dense()
    }

    fn counters(&self) -> &HardwareCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut HardwareCounters {
        &mut self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn confident_conditionals_survive_the_bath() {
        // AND-gate weights: hidden unit should read 1 only for v = (1, 1).
        let problem = BipartiteProblem::new(
            ndarray::arr2(&[[4.0], [4.0]]),
            ndarray::Array1::zeros(2),
            ndarray::arr1(&[-6.0]),
        )
        .unwrap();
        let mut sub =
            BrimSubstrate::new(problem, BrimConfig::default()).with_thermal_bath(0.005, 300);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let on = Array2::from_elem((20, 2), 1.0);
        let h_on = sub.sample_hidden_batch(&on, &mut rng);
        assert!(h_on.mean().unwrap() > 0.8, "mean {}", h_on.mean().unwrap());
        let off = Array2::zeros((20, 2));
        let h_off = sub.sample_hidden_batch(&off, &mut rng);
        assert!(
            h_off.mean().unwrap() < 0.2,
            "mean {}",
            h_off.mean().unwrap()
        );
    }

    #[test]
    fn reprogram_through_trait_changes_behavior() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let rbm = Rbm::random(3, 2, 0.1, &mut rng);
        let mut sub = BrimSubstrate::for_rbm(&rbm, BrimConfig::default());
        // Strong positive hidden bias: hidden units should latch on.
        let w = ndarray::Array2::zeros((3, 2));
        let bh = ndarray::Array1::from_elem(2, 6.0);
        sub.program(&w.view(), &ndarray::Array1::zeros(3).view(), &bh.view());
        let v = Array2::zeros((10, 3));
        let h = sub.sample_hidden_batch(&v, &mut rng);
        assert!(h.mean().unwrap() > 0.8);
        assert_eq!(
            sub.counters().host_words_transferred,
            (3 * 2 + 3 + 2) + 10 * 2
        );
    }

    #[test]
    fn phase_points_count_anneal_steps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let rbm = Rbm::random(2, 2, 0.1, &mut rng);
        let mut sub =
            BrimSubstrate::for_rbm(&rbm, BrimConfig::default()).with_thermal_bath(0.02, 50);
        let v = Array2::zeros((4, 2));
        let _ = sub.sample_hidden_batch(&v, &mut rng);
        assert_eq!(sub.counters().phase_points, 4 * 50);
    }
}
