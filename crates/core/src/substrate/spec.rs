use ndarray::{Array1, Array2};
use rand::Rng;

use ember_brim::BrimConfig;
use ember_ising::BipartiteProblem;
use ember_rbm::Rbm;
use ember_substrate::{ReplicableSubstrate, Substrate};

use crate::{AnnealerSubstrate, BrimSubstrate, GsConfig, SoftwareGibbs};

/// A fabrication recipe for substrate replicas: which backend physics to
/// build and with what component models, independent of any particular
/// machine size.
///
/// This is the constructor seam the serving layer shards on. Fabricating
/// a substrate is a *stochastic* act for some backends (`SoftwareGibbs`
/// freezes its coupler-variation map from the fabrication RNG), so a
/// service that wants every worker shard to realize the *same* physical
/// machine must fabricate **one prototype** from the spec and replicate
/// it with [`ReplicableSubstrate::clone_boxed`] — never fabricate per
/// shard.
///
/// # Example
///
/// ```
/// use ember_core::{GsConfig, SubstrateSpec};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let proto = SubstrateSpec::software(GsConfig::default()).fabricate(8, 4, &mut rng);
/// let replica = proto.clone_boxed(); // same frozen variation map
/// assert_eq!(replica.visible_len(), 8);
/// assert_eq!(replica.name(), proto.name());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SubstrateSpec {
    /// The analog node path of §3.2 ([`SoftwareGibbs`]) with the given
    /// accelerator config (sigmoid/comparator/noise/DTC models).
    SoftwareGibbs(GsConfig),
    /// The bipartite BRIM of §3.1 ([`BrimSubstrate`]) with the given
    /// integration config and thermal bath.
    Brim {
        /// Integration and circuit parameters.
        config: BrimConfig,
        /// Per-step flip-injection probability of the thermal bath.
        flip_probability: f64,
        /// Anneal length per conditional sample, in phase points.
        anneal_steps: usize,
    },
    /// The T=1 Metropolis annealer ([`AnnealerSubstrate`]) with the
    /// given temperature and mixing parameters.
    Annealer {
        /// Sampling temperature (`1.0` is the RBM's native temperature).
        temperature: f64,
        /// Equilibration sweeps before each read-out.
        burn_in: usize,
        /// Thinning sweeps per sample.
        thin: usize,
    },
}

impl SubstrateSpec {
    /// Thermal-bath defaults of [`BrimSubstrate`] (flip probability /
    /// anneal length under which the free-running machine tracks the
    /// Boltzmann distribution in the §3.3 experiment).
    const BRIM_FLIP: f64 = 0.02;
    const BRIM_STEPS: usize = 120;

    /// The software analog node path with the given config.
    pub fn software(config: GsConfig) -> Self {
        SubstrateSpec::SoftwareGibbs(config)
    }

    /// The bipartite BRIM with its default thermal bath.
    pub fn brim(config: BrimConfig) -> Self {
        SubstrateSpec::Brim {
            config,
            flip_probability: Self::BRIM_FLIP,
            anneal_steps: Self::BRIM_STEPS,
        }
    }

    /// The T=1 Metropolis annealer with its default mixing.
    pub fn annealer() -> Self {
        SubstrateSpec::Annealer {
            temperature: 1.0,
            burn_in: 8,
            thin: 2,
        }
    }

    /// Short stable identifier of the backend this spec fabricates
    /// (matches [`Substrate::name`] of the fabricated machine).
    pub fn backend_name(&self) -> &'static str {
        match self {
            SubstrateSpec::SoftwareGibbs(_) => "software-gibbs",
            SubstrateSpec::Brim { .. } => "brim",
            SubstrateSpec::Annealer { .. } => "annealer",
        }
    }

    /// Fabricates one `visible × hidden` machine. Weights and biases are
    /// zero until the first [`Substrate::program`]; `rng` is the
    /// fabrication randomness (frozen coupler variation for the software
    /// backend — deterministic replicas require a fixed seed here).
    pub fn fabricate<R: Rng + ?Sized>(
        &self,
        visible: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Box<dyn ReplicableSubstrate> {
        let zero_problem = || {
            BipartiteProblem::new(
                Array2::zeros((visible, hidden)),
                Array1::zeros(visible),
                Array1::zeros(hidden),
            )
            .expect("zero problem dimensions are consistent")
        };
        match self {
            SubstrateSpec::SoftwareGibbs(config) => {
                Box::new(SoftwareGibbs::new(visible, hidden, config, rng))
            }
            SubstrateSpec::Brim {
                config,
                flip_probability,
                anneal_steps,
            } => Box::new(
                BrimSubstrate::new(zero_problem(), *config)
                    .with_thermal_bath(*flip_probability, *anneal_steps),
            ),
            SubstrateSpec::Annealer {
                temperature,
                burn_in,
                thin,
            } => Box::new(
                AnnealerSubstrate::new(zero_problem())
                    .with_temperature(*temperature)
                    .with_mixing(*burn_in, *thin),
            ),
        }
    }

    /// Fabricates a machine sized for `rbm` and programs it with the
    /// model's current parameters (§3.2 steps 1–2).
    pub fn fabricate_for<R: Rng + ?Sized>(
        &self,
        rbm: &Rbm,
        rng: &mut R,
    ) -> Box<dyn ReplicableSubstrate> {
        let mut sub = self.fabricate(rbm.visible_len(), rbm.hidden_len(), rng);
        sub.program(
            &rbm.weights().view(),
            &rbm.visible_bias().view(),
            &rbm.hidden_bias().view(),
        );
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fabricate_builds_each_backend_at_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for spec in [
            SubstrateSpec::software(GsConfig::default()),
            SubstrateSpec::brim(BrimConfig::default()),
            SubstrateSpec::annealer(),
        ] {
            let sub = spec.fabricate(5, 3, &mut rng);
            assert_eq!(sub.visible_len(), 5);
            assert_eq!(sub.hidden_len(), 3);
            assert_eq!(sub.name(), spec.backend_name());
        }
    }

    #[test]
    fn fabricate_for_programs_the_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rbm = Rbm::random(4, 2, 0.3, &mut rng);
        let sub = SubstrateSpec::annealer().fabricate_for(&rbm, &mut rng);
        assert_eq!(
            sub.counters().host_words_transferred,
            (4 * 2 + 4 + 2) as u64
        );
    }

    #[test]
    fn cloned_software_replicas_share_the_frozen_variation() {
        use ember_analog::NoiseModel;
        let config = GsConfig::default().with_noise(NoiseModel::new(0.2, 0.0).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rbm = Rbm::random(6, 4, 0.5, &mut rng);
        let proto = SubstrateSpec::software(config).fabricate_for(&rbm, &mut rng);
        let mut a = proto.clone_boxed();
        let mut b = proto.clone_boxed();
        // Identical replicas + identical streams ⇒ identical samples,
        // even with static fabrication variation in play.
        let v = ndarray::Array2::from_elem((3, 6), 1.0);
        let mut ra = rand::rngs::StdRng::seed_from_u64(9);
        let mut rb = rand::rngs::StdRng::seed_from_u64(9);
        assert_eq!(
            a.sample_hidden_batch(&v, &mut ra),
            b.sample_hidden_batch(&v, &mut rb)
        );
    }
}
