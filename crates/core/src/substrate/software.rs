use ndarray::{Array1, Array2, ArrayView1, ArrayView2};
use rand::{Rng, RngCore};

use ember_analog::{Dtc, VariationMap};
use ember_substrate::{HardwareCounters, Substrate};

use crate::{AnalogSampler, GsConfig};

/// The software-modelled analog substrate of §3.2 (Fig. 12): the
/// coupling mesh performs the vector-matrix product, a modified-inverter
/// sigmoid unit shapes the field, and a comparator fed by thermal noise
/// latches the Bernoulli sample.
///
/// Batch sampling runs through the GEMM-batched
/// [`AnalogSampler::sample_layer_batch`] path; the row methods use the
/// scalar reference kernels ([`AnalogSampler::sample_layer_reference`]),
/// preserving the `GsEngine::SerialReference` baseline. The serving
/// kernels (`sample_hidden_batch_rows` / `sample_visible_batch_rows`)
/// keep the single GEMM but drive each row's stochastic tail from its
/// own RNG stream ([`AnalogSampler::sample_layer_batch_rows`]), so a
/// row's bits are invariant to request coalescing.
///
/// Static coupler variation is sampled once at construction
/// ("fabrication") and applied at every programming event: the physical
/// array realizes `W ⊙ variation`.
///
/// # Example
///
/// ```
/// use ember_core::substrate::{SoftwareGibbs, Substrate};
/// use ember_core::GsConfig;
/// use ndarray::{Array1, Array2};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sub = SoftwareGibbs::new(4, 2, &GsConfig::default(), &mut rng);
/// let w = Array2::from_elem((4, 2), 0.5);
/// sub.program(&w.view(), &Array1::zeros(4).view(), &Array1::zeros(2).view());
/// let v = Array2::from_elem((3, 4), 1.0);
/// let h = sub.sample_hidden_batch(&v, &mut rng);
/// assert_eq!(h.dim(), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareGibbs {
    sampler: AnalogSampler,
    dtc: Dtc,
    variation: VariationMap,
    weights: Array2<f64>,
    visible_bias: Array1<f64>,
    hidden_bias: Array1<f64>,
    settle_phase_points: u64,
    counters: HardwareCounters,
}

impl SoftwareGibbs {
    /// Fabricates a substrate of the given size: static coupler
    /// variation is sampled here, once; all analog component models come
    /// from `config`. Weights/biases are zero until the first
    /// [`Substrate::program`].
    pub fn new<R: Rng + ?Sized>(
        visible: usize,
        hidden: usize,
        config: &GsConfig,
        rng: &mut R,
    ) -> Self {
        let variation = config.noise().sample_variation((visible, hidden), rng);
        let sampler = AnalogSampler::new(config.sigmoid(), config.comparator(), config.noise());
        let dtc = Dtc::new(config.dtc_bits(), 0.0).expect("validated bits");
        SoftwareGibbs {
            sampler,
            dtc,
            variation,
            weights: Array2::zeros((visible, hidden)),
            visible_bias: Array1::zeros(visible),
            hidden_bias: Array1::zeros(hidden),
            settle_phase_points: config.settle_phase_points(),
            counters: HardwareCounters::new(),
        }
    }

    /// The frozen fabrication-time coupler variation map.
    pub fn variation(&self) -> &VariationMap {
        &self.variation
    }

    /// The analog node-path model.
    pub fn sampler(&self) -> &AnalogSampler {
        &self.sampler
    }

    /// The physically programmed weights (`W ⊙ variation`).
    pub fn programmed_weights(&self) -> &Array2<f64> {
        &self.weights
    }
}

impl Substrate for SoftwareGibbs {
    fn name(&self) -> &'static str {
        "software-gibbs"
    }

    fn visible_len(&self) -> usize {
        self.weights.nrows()
    }

    fn hidden_len(&self) -> usize {
        self.weights.ncols()
    }

    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) {
        assert_eq!(
            weights.dim(),
            self.variation.factors().dim(),
            "fabricated size"
        );
        self.weights = weights.to_owned() * self.variation.factors();
        self.visible_bias = visible_bias.to_owned();
        self.hidden_bias = hidden_bias.to_owned();
        self.counters.host_words_transferred += self.programming_cost();
    }

    fn quantize_batch(&self, levels: &Array2<f64>) -> Array2<f64> {
        levels.mapv(|x| self.dtc.convert(x))
    }

    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        let h = self.sampler.sample_layer_batch(
            &self.weights.view(),
            &self.hidden_bias.view(),
            visible,
            rng,
        );
        self.counters.phase_points += visible.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += h.len() as u64;
        h
    }

    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        let v = self.sampler.sample_layer_rev_batch(
            &self.weights.view(),
            &self.visible_bias.view(),
            hidden,
            rng,
        );
        self.counters.phase_points += hidden.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += v.len() as u64;
        v
    }

    fn sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        let h = self.sampler.sample_layer_batch_rows(
            &self.weights.view(),
            &self.hidden_bias.view(),
            visible,
            rngs,
        );
        self.counters.phase_points += visible.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += h.len() as u64;
        h
    }

    fn sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        let v = self.sampler.sample_layer_rev_batch_rows(
            &self.weights.view(),
            &self.visible_bias.view(),
            hidden,
            rngs,
        );
        self.counters.phase_points += hidden.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += v.len() as u64;
        v
    }

    fn sample_hidden_row(
        &mut self,
        visible: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let clamped = visible.mapv(|x| self.dtc.convert(x));
        let h = self.sampler.sample_layer_reference(
            &self.weights.view(),
            &self.hidden_bias.view(),
            &clamped.view(),
            false,
            rng,
        );
        self.counters.phase_points += self.settle_phase_points;
        self.counters.host_words_transferred += h.len() as u64;
        h
    }

    fn sample_visible_row(
        &mut self,
        hidden: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let v = self.sampler.sample_layer_reference(
            &self.weights.view(),
            &self.visible_bias.view(),
            hidden,
            true,
            rng,
        );
        self.counters.phase_points += self.settle_phase_points;
        self.counters.host_words_transferred += v.len() as u64;
        v
    }

    fn counters(&self) -> &HardwareCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut HardwareCounters {
        &mut self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_rbm::math::sigmoid;
    use rand::SeedableRng;

    #[test]
    fn ideal_batch_sampling_matches_logistic_conditionals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut sub = SoftwareGibbs::new(2, 1, &GsConfig::default(), &mut rng);
        let w = ndarray::arr2(&[[0.8], [-0.3]]);
        sub.program(
            &w.view(),
            &Array1::zeros(2).view(),
            &ndarray::arr1(&[0.2]).view(),
        );
        let v = Array2::from_elem((4000, 2), 1.0);
        let h = sub.sample_hidden_batch(&v, &mut rng);
        let freq = h.sum() / 4000.0;
        let expected = sigmoid(0.8 - 0.3 + 0.2);
        assert!((freq - expected).abs() < 0.02, "freq {freq} vs {expected}");
    }

    #[test]
    fn counters_accumulate_per_call() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let config = GsConfig::default();
        let mut sub = SoftwareGibbs::new(3, 2, &config, &mut rng);
        let w = Array2::zeros((3, 2));
        sub.program(
            &w.view(),
            &Array1::zeros(3).view(),
            &Array1::zeros(2).view(),
        );
        assert_eq!(sub.counters().host_words_transferred, 3 * 2 + 3 + 2);
        let v = Array2::zeros((5, 3));
        let _ = sub.sample_hidden_batch(&v, &mut rng);
        assert_eq!(
            sub.counters().phase_points,
            5 * config.settle_phase_points()
        );
        assert_eq!(
            sub.counters().host_words_transferred,
            (3 * 2 + 3 + 2) + 5 * 2
        );
    }

    #[test]
    fn quantize_is_identity_on_binary_levels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let sub = SoftwareGibbs::new(2, 2, &GsConfig::default(), &mut rng);
        let x = ndarray::arr2(&[[0.0, 1.0], [1.0, 0.0]]);
        assert_eq!(sub.quantize_batch(&x), x);
    }
}
