use ndarray::{Array1, Array2, ArrayView1, ArrayView2};
use rand::{Rng, RngCore};

use ember_analog::{Dtc, VariationMap};
use ember_substrate::{HardwareCounters, Substrate};

use crate::kernels::{binary_gemm, BitMatrix};
use crate::{AnalogSampler, GsConfig, GsKernel};

/// The software-modelled analog substrate of §3.2 (Fig. 12): the
/// coupling mesh performs the vector-matrix product, a modified-inverter
/// sigmoid unit shapes the field, and a comparator fed by thermal noise
/// latches the Bernoulli sample.
///
/// Batch sampling runs the analog vector-matrix product through the
/// bit-packed binary-state kernel by default ([`crate::kernels`]):
/// exact-`{0, 1}` batches pack into a [`BitMatrix`] and the field GEMM
/// reduces to summing selected weight rows — bit-identical to the dense
/// GEMM (same index-order accumulation; zero terms are floating-point
/// no-ops), so the samples never depend on the kernel choice.
/// Non-binary batches (multi-bit DTC gray data) and the
/// [`GsKernel::Dense`] baseline run the dense
/// [`AnalogSampler::sample_layer_batch`] path; the row methods use the
/// scalar reference kernels ([`AnalogSampler::sample_layer_reference`]),
/// preserving the `GsEngine::SerialReference` baseline. The serving
/// kernels (`sample_hidden_batch_rows` / `sample_visible_batch_rows`)
/// share the same kernel selection but drive each row's stochastic tail
/// from its own RNG stream, so a row's bits are invariant to request
/// coalescing. [`HardwareCounters::packed_kernel_calls`] /
/// [`HardwareCounters::dense_kernel_calls`] record which kernel served
/// each sampling call.
///
/// Static coupler variation is sampled once at construction
/// ("fabrication") and applied at every programming event: the physical
/// array realizes `W ⊙ variation`.
///
/// # Example
///
/// ```
/// use ember_core::substrate::{SoftwareGibbs, Substrate};
/// use ember_core::GsConfig;
/// use ndarray::{Array1, Array2};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sub = SoftwareGibbs::new(4, 2, &GsConfig::default(), &mut rng);
/// let w = Array2::from_elem((4, 2), 0.5);
/// sub.program(&w.view(), &Array1::zeros(4).view(), &Array1::zeros(2).view());
/// let v = Array2::from_elem((3, 4), 1.0);
/// let h = sub.sample_hidden_batch(&v, &mut rng);
/// assert_eq!(h.dim(), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareGibbs {
    sampler: AnalogSampler,
    dtc: Dtc,
    variation: VariationMap,
    weights: Array2<f64>,
    /// Materialized transpose of the programmed weights: the packed
    /// reverse kernel accumulates contiguous `Wᵀ` rows (refreshed at
    /// every programming event).
    weights_t: Array2<f64>,
    /// Element-wise squares of the programmed weights (and transpose),
    /// cached only under a noisy front end: the closed-form coupler
    /// noise needs `Σᵢ (Wᵢⱼ uᵢ)²`, which for binary `u` is one more
    /// packed product.
    sq_weights: Option<Array2<f64>>,
    sq_weights_t: Option<Array2<f64>>,
    visible_bias: Array1<f64>,
    hidden_bias: Array1<f64>,
    settle_phase_points: u64,
    kernel: GsKernel,
    counters: HardwareCounters,
}

impl SoftwareGibbs {
    /// Fabricates a substrate of the given size: static coupler
    /// variation is sampled here, once; all analog component models come
    /// from `config`. Weights/biases are zero until the first
    /// [`Substrate::program`].
    pub fn new<R: Rng + ?Sized>(
        visible: usize,
        hidden: usize,
        config: &GsConfig,
        rng: &mut R,
    ) -> Self {
        let variation = config.noise().sample_variation((visible, hidden), rng);
        let sampler = AnalogSampler::new(config.sigmoid(), config.comparator(), config.noise());
        let dtc = Dtc::new(config.dtc_bits(), 0.0).expect("validated bits");
        let noisy = config.noise().noise_rms() > 0.0;
        SoftwareGibbs {
            sampler,
            dtc,
            variation,
            weights: Array2::zeros((visible, hidden)),
            weights_t: Array2::zeros((hidden, visible)),
            sq_weights: noisy.then(|| Array2::zeros((visible, hidden))),
            sq_weights_t: noisy.then(|| Array2::zeros((hidden, visible))),
            visible_bias: Array1::zeros(visible),
            hidden_bias: Array1::zeros(hidden),
            settle_phase_points: config.settle_phase_points(),
            kernel: config.kernel(),
            counters: HardwareCounters::new(),
        }
    }

    /// The frozen fabrication-time coupler variation map.
    pub fn variation(&self) -> &VariationMap {
        &self.variation
    }

    /// The analog node-path model.
    pub fn sampler(&self) -> &AnalogSampler {
        &self.sampler
    }

    /// The physically programmed weights (`W ⊙ variation`).
    pub fn programmed_weights(&self) -> &Array2<f64> {
        &self.weights
    }

    /// The selected sampling GEMM kernel.
    pub fn kernel(&self) -> GsKernel {
        self.kernel
    }

    /// Returns a copy running on the given kernel (samples are
    /// bit-identical either way; see [`GsKernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: GsKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The batched analog field product (and, under a noisy front end,
    /// the closed-form coupler-noise variance) through the bit-packed
    /// kernel. `None` when the dense path must run instead: the dense
    /// kernel is selected, or the batch is not exactly binary (multi-bit
    /// DTC gray levels).
    ///
    /// For a binary batch `u`, `u ⊙ u == u` bit for bit, so the
    /// variance product reuses the same packed bits against the cached
    /// squared weights.
    fn packed_fields(
        &self,
        inputs: &Array2<f64>,
        rev: bool,
    ) -> Option<(Array2<f64>, Option<Array2<f64>>)> {
        if self.kernel != GsKernel::Packed {
            return None;
        }
        let bits = BitMatrix::from_batch(inputs)?;
        let w = if rev { &self.weights_t } else { &self.weights };
        let fields = binary_gemm(&bits, w, None);
        let var = if self.sampler.noise().noise_rms() > 0.0 {
            let sq = if rev {
                self.sq_weights_t.as_ref()
            } else {
                self.sq_weights.as_ref()
            };
            Some(binary_gemm(&bits, sq.expect("cached at program"), None))
        } else {
            None
        };
        Some((fields, var))
    }

    /// Shared kernel dispatch of the whole-batch sampling entry points:
    /// the packed product when selected and packable, the dense
    /// [`AnalogSampler`] path otherwise — counted either way. `rev`
    /// flips the direction (hidden side clamped, visible side sampled).
    fn sample_batch(
        &mut self,
        inputs: &Array2<f64>,
        rev: bool,
        rng: &mut dyn RngCore,
    ) -> Array2<f64> {
        // Kernel-tier accounting: both the packed selected-row kernel
        // and the dense GEMM run their inner loops on the runtime
        // SIMD tier, so the tier counter is orthogonal to the
        // packed/dense split (simd == packed + dense on a vector tier,
        // 0 under `EMBER_FORCE_SCALAR`).
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        match self.packed_fields(inputs, rev) {
            Some((mut fields, var)) => {
                self.counters.packed_kernel_calls += 1;
                let bias = if rev {
                    &self.visible_bias
                } else {
                    &self.hidden_bias
                };
                self.sampler
                    .latch_batch(&mut fields, &bias.view(), var.as_ref(), rng);
                fields
            }
            None => {
                self.counters.dense_kernel_calls += 1;
                let bias = if rev {
                    &self.visible_bias
                } else {
                    &self.hidden_bias
                };
                if rev {
                    self.sampler.sample_layer_rev_batch(
                        &self.weights.view(),
                        &bias.view(),
                        inputs,
                        rng,
                    )
                } else {
                    self.sampler
                        .sample_layer_batch(&self.weights.view(), &bias.view(), inputs, rng)
                }
            }
        }
    }

    /// The serial per-chain field product (and, under a noisy front
    /// end, the coupler-noise variance row) through the SIMD
    /// selected-row kernel [`crate::kernels::binary_field_row`].
    /// `None` when the scalar reference must run instead: the dense
    /// kernel is selected, or the row is not exactly binary.
    fn packed_row_fields(
        &self,
        input: &ArrayView1<'_, f64>,
        rev: bool,
    ) -> Option<(Array1<f64>, Option<Array1<f64>>)> {
        if self.kernel != GsKernel::Packed {
            return None;
        }
        let w = if rev { &self.weights_t } else { &self.weights };
        let field = crate::kernels::binary_field_row(input, w)?;
        let var = if self.sampler.noise().noise_rms() > 0.0 {
            let sq = if rev {
                self.sq_weights_t.as_ref()
            } else {
                self.sq_weights.as_ref()
            };
            Some(
                crate::kernels::binary_field_row(input, sq.expect("cached at program"))
                    .expect("input already validated binary"),
            )
        } else {
            None
        };
        Some((field, var))
    }

    /// Shared kernel dispatch of the row (serial-chain) sampling entry
    /// points: the SIMD selected-row field kernel when selected and the
    /// row is binary, the scalar
    /// [`AnalogSampler::sample_layer_reference`] otherwise — counted
    /// either way, and bit-identical either way (same accumulation
    /// order, same RNG draw order; see [`crate::kernels`]).
    fn sample_row(
        &mut self,
        input: &ArrayView1<'_, f64>,
        rev: bool,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        let bias = if rev {
            &self.visible_bias
        } else {
            &self.hidden_bias
        };
        match self.packed_row_fields(input, rev) {
            Some((mut field, var)) => {
                self.counters.packed_kernel_calls += 1;
                self.sampler
                    .latch_row(&mut field, &bias.view(), var.as_ref(), rng);
                field
            }
            None => {
                self.counters.dense_kernel_calls += 1;
                self.sampler.sample_layer_reference(
                    &self.weights.view(),
                    &bias.view(),
                    input,
                    rev,
                    rng,
                )
            }
        }
    }

    /// Per-row-stream counterpart of [`SoftwareGibbs::sample_batch`]
    /// (row `i`'s stochastic tail draws exclusively from `rngs[i]`).
    fn sample_batch_rows(
        &mut self,
        inputs: &Array2<f64>,
        rev: bool,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        match self.packed_fields(inputs, rev) {
            Some((mut fields, var)) => {
                self.counters.packed_kernel_calls += 1;
                let bias = if rev {
                    &self.visible_bias
                } else {
                    &self.hidden_bias
                };
                self.sampler
                    .latch_batch_rows(&mut fields, &bias.view(), var.as_ref(), rngs);
                fields
            }
            None => {
                self.counters.dense_kernel_calls += 1;
                let bias = if rev {
                    &self.visible_bias
                } else {
                    &self.hidden_bias
                };
                if rev {
                    self.sampler.sample_layer_rev_batch_rows(
                        &self.weights.view(),
                        &bias.view(),
                        inputs,
                        rngs,
                    )
                } else {
                    self.sampler.sample_layer_batch_rows(
                        &self.weights.view(),
                        &bias.view(),
                        inputs,
                        rngs,
                    )
                }
            }
        }
    }
}

impl Substrate for SoftwareGibbs {
    fn name(&self) -> &'static str {
        "software-gibbs"
    }

    fn visible_len(&self) -> usize {
        self.weights.nrows()
    }

    fn hidden_len(&self) -> usize {
        self.weights.ncols()
    }

    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) {
        assert_eq!(
            weights.dim(),
            self.variation.factors().dim(),
            "fabricated size"
        );
        let programmed = weights.to_owned() * self.variation.factors();
        // Re-programming identical weights is the volatile-substrate
        // norm (the serving layer re-programs every job): the physical
        // words are paid either way (counted below), but the host-side
        // derived caches — transpose and squared weights for the packed
        // kernel — only rebuild when the realized array actually moved.
        if programmed != self.weights {
            self.weights_t = programmed.t().to_owned();
            if self.sq_weights.is_some() {
                self.sq_weights = Some(programmed.mapv(|w| w * w));
                self.sq_weights_t = Some(self.weights_t.mapv(|w| w * w));
            }
            self.weights = programmed;
        }
        self.visible_bias = visible_bias.to_owned();
        self.hidden_bias = hidden_bias.to_owned();
        self.counters.host_words_transferred += self.programming_cost();
    }

    fn quantize_batch(&self, levels: &Array2<f64>) -> Array2<f64> {
        levels.mapv(|x| self.dtc.convert(x))
    }

    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        let h = self.sample_batch(visible, false, rng);
        self.counters.phase_points += visible.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += h.len() as u64;
        h
    }

    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        let v = self.sample_batch(hidden, true, rng);
        self.counters.phase_points += hidden.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += v.len() as u64;
        v
    }

    fn sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        let h = self.sample_batch_rows(visible, false, rngs);
        self.counters.phase_points += visible.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += h.len() as u64;
        h
    }

    fn sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        let v = self.sample_batch_rows(hidden, true, rngs);
        self.counters.phase_points += hidden.nrows() as u64 * self.settle_phase_points;
        self.counters.host_words_transferred += v.len() as u64;
        v
    }

    fn sample_hidden_row(
        &mut self,
        visible: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let clamped = visible.mapv(|x| self.dtc.convert(x));
        let h = self.sample_row(&clamped.view(), false, rng);
        self.counters.phase_points += self.settle_phase_points;
        self.counters.host_words_transferred += h.len() as u64;
        h
    }

    fn sample_visible_row(
        &mut self,
        hidden: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let v = self.sample_row(hidden, true, rng);
        self.counters.phase_points += self.settle_phase_points;
        self.counters.host_words_transferred += v.len() as u64;
        v
    }

    fn counters(&self) -> &HardwareCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut HardwareCounters {
        &mut self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_rbm::math::sigmoid;
    use rand::SeedableRng;

    #[test]
    fn ideal_batch_sampling_matches_logistic_conditionals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut sub = SoftwareGibbs::new(2, 1, &GsConfig::default(), &mut rng);
        let w = ndarray::arr2(&[[0.8], [-0.3]]);
        sub.program(
            &w.view(),
            &Array1::zeros(2).view(),
            &ndarray::arr1(&[0.2]).view(),
        );
        let v = Array2::from_elem((4000, 2), 1.0);
        let h = sub.sample_hidden_batch(&v, &mut rng);
        let freq = h.sum() / 4000.0;
        let expected = sigmoid(0.8 - 0.3 + 0.2);
        assert!((freq - expected).abs() < 0.02, "freq {freq} vs {expected}");
    }

    #[test]
    fn counters_accumulate_per_call() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let config = GsConfig::default();
        let mut sub = SoftwareGibbs::new(3, 2, &config, &mut rng);
        let w = Array2::zeros((3, 2));
        sub.program(
            &w.view(),
            &Array1::zeros(3).view(),
            &Array1::zeros(2).view(),
        );
        assert_eq!(sub.counters().host_words_transferred, 3 * 2 + 3 + 2);
        let v = Array2::zeros((5, 3));
        let _ = sub.sample_hidden_batch(&v, &mut rng);
        assert_eq!(
            sub.counters().phase_points,
            5 * config.settle_phase_points()
        );
        assert_eq!(
            sub.counters().host_words_transferred,
            (3 * 2 + 3 + 2) + 5 * 2
        );
    }

    #[test]
    fn packed_and_dense_kernels_sample_identical_bits() {
        use ember_analog::NoiseModel;
        // One substrate fabricated, cloned onto each kernel: a CD-style
        // alternating chain must produce bit-identical samples, noisy
        // front end included (the packed product shares the dense
        // GEMM's index-order accumulation).
        let mut rng = rand::rngs::StdRng::seed_from_u64(40);
        let config = GsConfig::default().with_noise(NoiseModel::new(0.05, 0.1).unwrap());
        let proto = SoftwareGibbs::new(9, 5, &config, &mut rng);
        let w = Array2::from_shape_fn((9, 5), |_| rng.random_range(-0.8..0.8));
        let bv = Array1::from_shape_fn(9, |_| rng.random_range(-0.3..0.3));
        let bh = Array1::from_shape_fn(5, |_| rng.random_range(-0.3..0.3));
        let v0 = Array2::from_shape_fn((7, 9), |_| f64::from(rng.random_bool(0.5)));
        let run = |kernel: GsKernel| {
            let mut sub = proto.clone().with_kernel(kernel);
            sub.program(&w.view(), &bv.view(), &bh.view());
            let mut rng = rand::rngs::StdRng::seed_from_u64(77);
            let mut v = v0.clone();
            let mut trace = Vec::new();
            for _ in 0..4 {
                let h = sub.sample_hidden_batch(&v, &mut rng);
                v = sub.sample_visible_batch(&h, &mut rng);
                trace.push((h, v.clone()));
            }
            (trace, *sub.counters())
        };
        let (packed, packed_counters) = run(GsKernel::Packed);
        let (dense, dense_counters) = run(GsKernel::Dense);
        assert_eq!(packed, dense);
        assert_eq!(packed_counters.packed_kernel_calls, 8);
        assert_eq!(packed_counters.dense_kernel_calls, 0);
        assert_eq!(dense_counters.packed_kernel_calls, 0);
        assert_eq!(dense_counters.dense_kernel_calls, 8);
        // Everything else about the accounting is kernel-independent.
        assert_eq!(packed_counters.phase_points, dense_counters.phase_points);
        assert_eq!(
            packed_counters.host_words_transferred,
            dense_counters.host_words_transferred
        );
    }

    #[test]
    fn non_binary_batch_falls_back_to_dense_kernel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut sub = SoftwareGibbs::new(3, 2, &GsConfig::default(), &mut rng);
        sub.program(
            &Array2::zeros((3, 2)).view(),
            &Array1::zeros(3).view(),
            &Array1::zeros(2).view(),
        );
        let gray = Array2::from_elem((2, 3), 0.5);
        let _ = sub.sample_hidden_batch(&gray, &mut rng);
        assert_eq!(sub.counters().dense_kernel_calls, 1);
        assert_eq!(sub.counters().packed_kernel_calls, 0);
        let binary = Array2::from_elem((2, 3), 1.0);
        let _ = sub.sample_hidden_batch(&binary, &mut rng);
        assert_eq!(sub.counters().packed_kernel_calls, 1);
    }

    #[test]
    fn quantize_is_identity_on_binary_levels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let sub = SoftwareGibbs::new(2, 2, &GsConfig::default(), &mut rng);
        let x = ndarray::arr2(&[[0.0, 1.0], [1.0, 0.0]]);
        assert_eq!(sub.quantize_batch(&x), x);
    }
}
