use ndarray::{Array1, Array2, ArrayView1, ArrayView2};
use rand::RngCore;

use ember_ising::{AnnealSchedule, Annealer, BipartiteProblem, IsingProblem};
use ember_rbm::Rbm;
use ember_substrate::{HardwareCounters, Substrate};

use crate::kernels::{binary_gemm, BitMatrix};
use crate::GsKernel;

/// A Metropolis annealer driven as a conditional sampler over the
/// bipartite coupling — the software stand-in for an annealing-capable
/// Ising machine (the paper's §2.1 baseline; the seam future
/// quantum/CMOS annealer hardware plugs into).
///
/// Clamping one side of the bipartite problem reduces the free side to
/// independent spins in their conditional local fields: in bit domain
/// the field on hidden unit `j` is `aⱼ = Σᵢ Wᵢⱼ vᵢ + bₕⱼ`, which embeds
/// to a spin-domain field of `aⱼ/2`, so Metropolis sampling at
/// temperature `T` realizes `P(hⱼ = 1 | v) = σ(aⱼ/T)`. At the default
/// `T = 1` that is exactly the RBM conditional — the annealer is a
/// *calibrated* substrate, unlike the dynamics-driven
/// [`super::BrimSubstrate`].
///
/// # Example
///
/// ```
/// use ember_core::substrate::{AnnealerSubstrate, Substrate};
/// use ember_rbm::Rbm;
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let rbm = Rbm::random(4, 2, 0.5, &mut rng);
/// let mut sub = AnnealerSubstrate::for_rbm(&rbm);
/// let v = Array2::from_elem((2, 4), 1.0);
/// let h = sub.sample_hidden_batch(&v, &mut rng);
/// assert_eq!(h.dim(), (2, 2));
/// ```
#[derive(Debug, Clone)]
pub struct AnnealerSubstrate {
    problem: BipartiteProblem,
    /// Materialized transpose of the programmed coupling, refreshed at
    /// every programming event: the packed reverse sweep-field kernel
    /// accumulates contiguous `Wᵀ` rows.
    weights_t: Array2<f64>,
    annealer: Annealer,
    temperature: f64,
    burn_in: usize,
    thin: usize,
    kernel: GsKernel,
    counters: HardwareCounters,
}

impl AnnealerSubstrate {
    /// Programs `problem` onto the annealer at unit temperature with a
    /// short equilibration (the clamped conditional chains are
    /// single-spin-flip on independent spins, so they mix in a handful
    /// of sweeps).
    pub fn new(problem: BipartiteProblem) -> Self {
        let weights_t = problem.weights().t().to_owned();
        AnnealerSubstrate {
            problem,
            weights_t,
            annealer: Annealer::new(AnnealSchedule::constant(1.0, 1)),
            temperature: 1.0,
            burn_in: 8,
            thin: 2,
            kernel: GsKernel::Packed,
            counters: HardwareCounters::new(),
        }
    }

    /// An annealer sized for (and programmed with) `rbm`.
    pub fn for_rbm(rbm: &Rbm) -> Self {
        AnnealerSubstrate::new(rbm.to_bipartite())
    }

    /// Returns a copy sampling at the given temperature (`T = 1` is the
    /// RBM's native Boltzmann temperature; higher values flatten the
    /// conditionals, modelling a hot substrate).
    ///
    /// # Panics
    ///
    /// Panics unless `temperature > 0`.
    #[must_use]
    pub fn with_temperature(mut self, temperature: f64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        self.temperature = temperature;
        self
    }

    /// Returns a copy with the given Metropolis mixing parameters
    /// (equilibration sweeps before the read-out and thinning sweeps per
    /// sample).
    ///
    /// # Panics
    ///
    /// Panics if `burn_in == 0`.
    #[must_use]
    pub fn with_mixing(mut self, burn_in: usize, thin: usize) -> Self {
        assert!(burn_in >= 1, "need at least one equilibration sweep");
        self.burn_in = burn_in;
        self.thin = thin;
        self
    }

    /// Returns a copy running the sweep-field products on the given
    /// kernel (conditional fields — and therefore samples — are
    /// bit-identical either way; see [`GsKernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: GsKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The selected sweep-field GEMM kernel.
    pub fn kernel(&self) -> GsKernel {
        self.kernel
    }

    /// The programmed bipartite coupling.
    pub fn problem(&self) -> &BipartiteProblem {
        &self.problem
    }

    /// The conditional bit fields of one batched half-step
    /// (`clamped · W (+ bias)` forward, `clamped · Wᵀ (+ bias)`
    /// reverse), through the selected kernel. Binary batches run the
    /// bit-packed product; gray levels and the dense baseline pay the
    /// dense GEMM. Returns the fields and whether the packed kernel
    /// served the call (for the counter accounting).
    fn batch_fields(&self, clamped: &Array2<f64>, rev: bool) -> (Array2<f64>, bool) {
        let (w, bias) = if rev {
            (&self.weights_t, self.problem.visible_bias())
        } else {
            (self.problem.weights(), self.problem.hidden_bias())
        };
        if self.kernel == GsKernel::Packed {
            if let Some(bits) = BitMatrix::from_batch(clamped) {
                return (binary_gemm(&bits, w, Some(&bias.view())), true);
            }
        }
        let mut fields = clamped.dot(w);
        for mut row in fields.axis_iter_mut(ndarray::Axis(0)) {
            row += bias;
        }
        (fields, false)
    }

    /// Accounts one batched half-step's kernel choice (the Metropolis
    /// sweep dots and both field kernels run their inner loops on the
    /// runtime SIMD tier, so the tier counter is orthogonal to the
    /// packed/dense split).
    fn count_kernel(&mut self, packed: bool) {
        self.counters.simd_kernel_calls += u64::from(ndarray::simd::simd_active());
        if packed {
            self.counters.packed_kernel_calls += 1;
        } else {
            self.counters.dense_kernel_calls += 1;
        }
    }

    /// Draws one free-side configuration given per-unit conditional bit
    /// fields `a` (length = free-side size): embeds `a/2` as spin
    /// fields and runs clamped Metropolis sweeps.
    fn sample_free_side(&self, fields: &ArrayView1<'_, f64>, rng: &mut dyn RngCore) -> Array1<f64> {
        let n = fields.len();
        let mut builder = IsingProblem::builder(n);
        for (j, &a) in fields.iter().enumerate() {
            builder.field(j, a / 2.0).expect("index in range");
        }
        let conditional = builder.build();
        let sample = self
            .annealer
            .sample_boltzmann(
                &conditional,
                self.temperature,
                1,
                self.burn_in,
                self.thin,
                rng,
            )
            .pop()
            .expect("one sample requested");
        Array1::from_iter(sample.to_bits().into_iter().map(f64::from))
    }

    fn sweeps_per_sample(&self) -> u64 {
        (self.burn_in + self.thin.max(1)) as u64
    }
}

impl Substrate for AnnealerSubstrate {
    fn name(&self) -> &'static str {
        "annealer"
    }

    fn visible_len(&self) -> usize {
        self.problem.visible_len()
    }

    fn hidden_len(&self) -> usize {
        self.problem.hidden_len()
    }

    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) {
        assert_eq!(
            weights.dim(),
            self.problem.weights().dim(),
            "fabricated size"
        );
        // Volatile re-programming of identical parameters (the serving
        // layer's per-job norm) pays the transfer words but skips the
        // host-side rebuild of the problem and the cached transpose.
        let unchanged = weights
            .iter()
            .zip(self.problem.weights().iter())
            .all(|(a, b)| a == b)
            && *visible_bias == *self.problem.visible_bias()
            && *hidden_bias == *self.problem.hidden_bias();
        if !unchanged {
            self.problem = BipartiteProblem::new(
                weights.to_owned(),
                visible_bias.to_owned(),
                hidden_bias.to_owned(),
            )
            .expect("consistent weight/bias dimensions");
            self.weights_t = self.problem.weights().t().to_owned();
        }
        self.counters.host_words_transferred += self.programming_cost();
    }

    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        assert_eq!(
            visible.ncols(),
            self.visible_len(),
            "visible width mismatch"
        );
        let n = self.hidden_len();
        // Conditional bit fields for the whole batch in one product:
        // a = v · W + b_h — bit-packed when the clamp is binary.
        let (fields, packed) = self.batch_fields(visible, false);
        self.count_kernel(packed);
        let mut out = Array2::zeros((visible.nrows(), n));
        for (r, field_row) in fields.rows().enumerate() {
            out.row_mut(r)
                .assign(&self.sample_free_side(&field_row, rng));
        }
        self.counters.phase_points += visible.nrows() as u64 * self.sweeps_per_sample();
        self.counters.host_words_transferred += (visible.nrows() * n) as u64;
        out
    }

    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        assert_eq!(hidden.ncols(), self.hidden_len(), "hidden width mismatch");
        let m = self.visible_len();
        let (fields, packed) = self.batch_fields(hidden, true);
        self.count_kernel(packed);
        let mut out = Array2::zeros((hidden.nrows(), m));
        for (r, field_row) in fields.rows().enumerate() {
            out.row_mut(r)
                .assign(&self.sample_free_side(&field_row, rng));
        }
        self.counters.phase_points += hidden.nrows() as u64 * self.sweeps_per_sample();
        self.counters.host_words_transferred += (hidden.nrows() * m) as u64;
        out
    }

    fn counters(&self) -> &HardwareCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut HardwareCounters {
        &mut self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_rbm::math::sigmoid;
    use rand::SeedableRng;

    #[test]
    fn unit_temperature_matches_logistic_conditionals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let problem = BipartiteProblem::new(
            ndarray::arr2(&[[0.8], [-0.3]]),
            ndarray::Array1::zeros(2),
            ndarray::arr1(&[0.2]),
        )
        .unwrap();
        let mut sub = AnnealerSubstrate::new(problem);
        let v = Array2::from_elem((4000, 2), 1.0);
        let h = sub.sample_hidden_batch(&v, &mut rng);
        let freq = h.sum() / 4000.0;
        let expected = sigmoid(0.8 - 0.3 + 0.2);
        assert!((freq - expected).abs() < 0.03, "freq {freq} vs {expected}");
    }

    #[test]
    fn hot_substrate_flattens_conditionals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let problem = BipartiteProblem::new(
            ndarray::arr2(&[[3.0]]),
            ndarray::Array1::zeros(1),
            ndarray::Array1::zeros(1),
        )
        .unwrap();
        let mut sub = AnnealerSubstrate::new(problem).with_temperature(10.0);
        let v = Array2::from_elem((3000, 1), 1.0);
        let h = sub.sample_hidden_batch(&v, &mut rng);
        let freq = h.sum() / 3000.0;
        // σ(3/10) ≈ 0.574, far from the T=1 value σ(3) ≈ 0.953.
        assert!((freq - sigmoid(0.3)).abs() < 0.04, "freq {freq}");
    }

    #[test]
    fn packed_and_dense_sweep_fields_sample_identically() {
        use rand::Rng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let w = Array2::from_shape_fn((6, 4), |_| rng.random_range(-1.0..1.0));
        let problem = BipartiteProblem::new(
            w,
            ndarray::Array1::from_shape_fn(6, |_| rng.random_range(-0.5..0.5)),
            ndarray::Array1::from_shape_fn(4, |_| rng.random_range(-0.5..0.5)),
        )
        .unwrap();
        let v = Array2::from_shape_fn((5, 6), |_| f64::from(rng.random_bool(0.5)));
        let run = |kernel| {
            let mut sub = AnnealerSubstrate::new(problem.clone()).with_kernel(kernel);
            let mut rng = rand::rngs::StdRng::seed_from_u64(99);
            let h = sub.sample_hidden_batch(&v, &mut rng);
            let back = sub.sample_visible_batch(&h, &mut rng);
            (h, back, *sub.counters())
        };
        let (h_p, v_p, c_p) = run(crate::GsKernel::Packed);
        let (h_d, v_d, c_d) = run(crate::GsKernel::Dense);
        assert_eq!(h_p, h_d);
        assert_eq!(v_p, v_d);
        assert_eq!(c_p.packed_kernel_calls, 2);
        assert_eq!(c_d.dense_kernel_calls, 2);
    }

    #[test]
    fn reverse_direction_uses_visible_fields() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let problem = BipartiteProblem::new(
            ndarray::arr2(&[[5.0], [-5.0]]),
            ndarray::Array1::zeros(2),
            ndarray::Array1::zeros(1),
        )
        .unwrap();
        let mut sub = AnnealerSubstrate::new(problem);
        let h = Array2::from_elem((200, 1), 1.0);
        let v = sub.sample_visible_batch(&h, &mut rng);
        let mean0 = v.column(0).sum() / 200.0;
        let mean1 = v.column(1).sum() / 200.0;
        assert!(mean0 > 0.95, "v0 should be driven on, got {mean0}");
        assert!(mean1 < 0.05, "v1 should be driven off, got {mean1}");
    }
}
