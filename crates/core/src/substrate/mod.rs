//! Interchangeable sampling backends behind one [`Substrate`] trait.
//!
//! The paper's central claim (§3.2) is that the Ising substrate is a
//! *drop-in replacement* for software Gibbs sampling: the host-side
//! learning loop (Algorithm 1) never needs to know whether the
//! conditional samples come from MCMC arithmetic or from physics. This
//! module is that seam made explicit. The trait itself lives in
//! `ember_substrate` (so `ember_rbm`'s trainers can be generic over it
//! without a dependency cycle); the three concrete backends live here,
//! next to their component models:
//!
//! * [`SoftwareGibbs`] — the analog node path of Fig. 12 (coupling-mesh
//!   summation → sigmoid unit → comparator vs. thermal noise), batched
//!   through the GEMM engine of PR 1. This is the reference backend:
//!   with ideal components it samples the exact conditionals.
//! * [`BrimSubstrate`] — the bipartite BRIM of Fig. 3: clamp one side,
//!   let the coupled ring-oscillator dynamics evolve under flip
//!   injection (the thermal bath), threshold-read the free side. The
//!   sampling here *is* the physics; no sigmoid is ever evaluated.
//! * [`AnnealerSubstrate`] — Metropolis sampling over the bipartite
//!   coupling at unit temperature (`ember_ising::Annealer`), the
//!   software stand-in for an annealing-capable Ising machine and the
//!   hook future quantum/CMOS annealer backends plug into.
//!
//! How each [`Substrate`] method realizes the §3.2 operation list:
//!
//! | §3.2 operation | Trait method | `SoftwareGibbs` | `BrimSubstrate` | `AnnealerSubstrate` |
//! |---|---|---|---|---|
//! | 1–2. program couplings/biases (`m·n + m + n` words) | `program` | applies frozen coupler variation | spin-domain embedding via `BipartiteBrim::reprogram` | rebuilds the bipartite coupling |
//! | 3. clamp data through DTCs | `quantize_batch` | `Dtc::convert` per element | identity (clamp units drive rails directly) | identity |
//! | 4–5. settle the free side, read it out | `sample_hidden_batch` / `sample_visible_batch` | GEMM + sigmoid + comparator | clamp → anneal under flip injection → threshold | clamped-side conditional fields → Metropolis sweeps |
//! | 6. alternate sides for k-step Gibbs | callers alternate the two methods | — | — | — |
//! | 7–8. host accumulates and updates | host-side | counters track settle phase points + words | phase points = integration steps | phase points = Metropolis sweeps |
//!
//! All backends are driven identically — see
//! `examples/substrate_sampling.rs` for the three of them sampling the
//! same RBM through one loop, and `crates/core/tests/substrate_conformance.rs`
//! for the shared distribution-conformance suite.

pub use ember_substrate::{
    ChaosConfig, ChaosSubstrate, HardwareCounters, ReplicableSubstrate, Substrate, SubstrateFault,
};

mod annealer;
mod brim;
mod software;
mod spec;

pub use annealer::AnnealerSubstrate;
pub use brim::BrimSubstrate;
pub use software::SoftwareGibbs;
pub use spec::SubstrateSpec;
