use ember_analog::{Comparator, NoiseModel, SigmoidUnit};
use serde::{Deserialize, Serialize};

/// Which host-side execution engine the Gibbs-sampler accelerator model
/// uses for a minibatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GsEngine {
    /// The parallel batched engine: per-row chains fan out across the
    /// rayon pool on per-row RNG streams, gradients accumulate through
    /// batched GEMMs.
    #[default]
    Batched,
    /// The original row-at-a-time scalar engine (element-wise outer
    /// products). Kept as the measured baseline of the `bench_pr1`
    /// harness and the equivalence tests.
    SerialReference,
}

/// Which GEMM kernel the software substrates use for the binary-state
/// products of the sampling hot path (`states · W`, `states · Wᵀ`).
///
/// Both kernels produce **bit-identical samples**: they accumulate
/// every output element's fan-in terms in the same ascending index
/// order, and skipping an exact-zero term is a floating-point no-op
/// (see [`crate::kernels`]). The flag only selects how fast the product
/// is computed; [`ember_substrate::HardwareCounters`] records which
/// kernel served each call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GsKernel {
    /// Bit-packed fast path: batches that are exactly `{0, 1}` are
    /// packed into a [`crate::kernels::BitMatrix`] and multiplied by
    /// accumulating selected weight rows ([`crate::kernels::binary_gemm`]);
    /// non-binary batches (multi-bit DTC gray levels) fall back to the
    /// dense GEMM per call.
    #[default]
    Packed,
    /// Always the dense GEMM — the measured baseline of the
    /// `bench_pr4` `packed-kernel` suite.
    Dense,
}

/// Configuration of the Gibbs-sampler accelerator (§3.2).
///
/// All fields are private: construction is `Default` (the paper's
/// baseline) refined through the `with_*` builders — the single config
/// idiom shared by [`BgfConfig`] and `ember_brim::BrimConfig`. Every
/// builder validates its argument, so a constructed config is always
/// physically meaningful.
///
/// # Example
///
/// ```
/// use ember_core::GsConfig;
/// use ember_analog::NoiseModel;
///
/// let config = GsConfig::default()
///     .with_k(10)
///     .with_learning_rate(0.05)
///     .with_noise(NoiseModel::new(0.1, 0.1).unwrap());
/// assert_eq!(config.k(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GsConfig {
    k: usize,
    learning_rate: f64,
    sigmoid: SigmoidUnit,
    comparator: Comparator,
    noise: NoiseModel,
    dtc_bits: u32,
    settle_phase_points: u64,
    engine: GsEngine,
    kernel: GsKernel,
}

impl GsConfig {
    /// Number of substrate-assisted Gibbs steps per negative phase (the
    /// `CD_k` of Algorithm 1).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Host-side learning rate `α`.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The sigmoid-unit transfer model.
    pub fn sigmoid(&self) -> SigmoidUnit {
        self.sigmoid
    }

    /// The comparator model latching the Bernoulli samples (offset
    /// non-ideality of §4.5 flows through here).
    pub fn comparator(&self) -> Comparator {
        self.comparator
    }

    /// The substrate noise/variation model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// DTC resolution for clamping inputs (8 bits in the paper).
    pub fn dtc_bits(&self) -> u32 {
        self.dtc_bits
    }

    /// Phase points one clamped settle takes (feeds the perf model).
    pub fn settle_phase_points(&self) -> u64 {
        self.settle_phase_points
    }

    /// The host-side execution engine.
    pub fn engine(&self) -> GsEngine {
        self.engine
    }

    /// The GEMM kernel of the binary-state sampling hot path.
    pub fn kernel(&self) -> GsKernel {
        self.kernel
    }

    /// Returns a copy with the given `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self
    }

    /// Returns a copy with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics unless `learning_rate > 0`.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
        self
    }

    /// Returns a copy with the given sigmoid-unit model.
    #[must_use]
    pub fn with_sigmoid(mut self, sigmoid: SigmoidUnit) -> Self {
        self.sigmoid = sigmoid;
        self
    }

    /// Returns a copy with the given comparator model.
    #[must_use]
    pub fn with_comparator(mut self, comparator: Comparator) -> Self {
        self.comparator = comparator;
        self
    }

    /// Returns a copy with the given noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Returns a copy with the given DTC resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 16`.
    #[must_use]
    pub fn with_dtc_bits(mut self, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "DTC bits must be 1..=16");
        self.dtc_bits = bits;
        self
    }

    /// Returns a copy with the given execution engine.
    #[must_use]
    pub fn with_engine(mut self, engine: GsEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with the given sampling GEMM kernel (samples are
    /// bit-identical either way; see [`GsKernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: GsKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Returns a copy with the given settle duration in phase points.
    ///
    /// # Panics
    ///
    /// Panics if `points == 0`.
    #[must_use]
    pub fn with_settle_phase_points(mut self, points: u64) -> Self {
        assert!(points >= 1, "need at least one settle phase point");
        self.settle_phase_points = points;
        self
    }
}

impl Default for GsConfig {
    /// CD-5-equivalent sampling, `α = 0.1` (the paper's learning rate),
    /// ideal analog components (offset-free comparator), 8-bit DTCs,
    /// 50 phase points per settle.
    fn default() -> Self {
        GsConfig {
            k: 5,
            learning_rate: 0.1,
            sigmoid: SigmoidUnit::ideal(),
            comparator: Comparator::ideal(),
            noise: NoiseModel::noiseless(),
            dtc_bits: 8,
            settle_phase_points: 50,
            engine: GsEngine::Batched,
            kernel: GsKernel::Packed,
        }
    }
}

/// Configuration of the Boltzmann gradient follower (§3.3).
///
/// The in-hardware learning rate is set by the charge-pump packet size
/// (`pump_ratio`): one gated update moves a weight by roughly
/// `2 · weight_scale · pump_ratio` near mid-rail. With the effective
/// minibatch of 1 this must be ~`batch_size×` smaller than the software
/// `α` (§3.3: "a correspondingly smaller α, roughly 500× less than that
/// needed for n = 500").
///
/// All fields are private: construction is `Default` refined through
/// the `with_*` builders, the same idiom as [`GsConfig`] and
/// `ember_brim::BrimConfig`.
///
/// # Example
///
/// ```
/// use ember_core::BgfConfig;
///
/// let config = BgfConfig::default().with_particles(8).with_negative_sweeps(2);
/// assert_eq!(config.particles(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BgfConfig {
    pump_ratio: f64,
    weight_scale: f64,
    particles: usize,
    negative_sweeps: usize,
    sigmoid: SigmoidUnit,
    noise: NoiseModel,
    dtc_bits: u32,
    adc_bits: u32,
    settle_phase_points: u64,
    anneal_phase_points: u64,
}

impl BgfConfig {
    /// Charge-sharing ratio of the training circuit (packet size).
    pub fn pump_ratio(&self) -> f64 {
        self.pump_ratio
    }

    /// Volts-to-weight scale `s` in `W = s (V⁺ − V⁻)`; weights are
    /// representable in `[−s, s]`.
    pub fn weight_scale(&self) -> f64 {
        self.weight_scale
    }

    /// Number of persistent particles `p`.
    pub fn particles(&self) -> usize {
        self.particles
    }

    /// Alternating sampling sweeps per negative-phase anneal (the
    /// behavioral stand-in for the hardware anneal; the substrate's walk is
    /// "CD-k with a very large k", Appendix A).
    pub fn negative_sweeps(&self) -> usize {
        self.negative_sweeps
    }

    /// The sigmoid-unit transfer model.
    pub fn sigmoid(&self) -> SigmoidUnit {
        self.sigmoid
    }

    /// The substrate noise/variation model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// DTC resolution for the visible clamps.
    pub fn dtc_bits(&self) -> u32 {
        self.dtc_bits
    }

    /// ADC resolution of the final read-out (8 bits in the paper).
    pub fn adc_bits(&self) -> u32 {
        self.adc_bits
    }

    /// Phase points per positive-phase settle.
    pub fn settle_phase_points(&self) -> u64 {
        self.settle_phase_points
    }

    /// Phase points per negative-phase anneal.
    pub fn anneal_phase_points(&self) -> u64 {
        self.anneal_phase_points
    }

    /// Returns a copy with the given pump ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio ≤ 0.5`.
    #[must_use]
    pub fn with_pump_ratio(mut self, ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 0.5,
            "pump ratio must be in (0, 0.5]"
        );
        self.pump_ratio = ratio;
        self
    }

    /// Returns a copy with the given weight scale.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    #[must_use]
    pub fn with_weight_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "weight scale must be positive");
        self.weight_scale = scale;
        self
    }

    /// Returns a copy with the given particle count.
    ///
    /// # Panics
    ///
    /// Panics if `particles == 0`.
    #[must_use]
    pub fn with_particles(mut self, particles: usize) -> Self {
        assert!(particles >= 1, "need at least one particle");
        self.particles = particles;
        self
    }

    /// Returns a copy with the given negative-sweep count.
    ///
    /// # Panics
    ///
    /// Panics if `sweeps == 0`.
    #[must_use]
    pub fn with_negative_sweeps(mut self, sweeps: usize) -> Self {
        assert!(sweeps >= 1, "need at least one sweep");
        self.negative_sweeps = sweeps;
        self
    }

    /// Returns a copy with the given sigmoid model.
    #[must_use]
    pub fn with_sigmoid(mut self, sigmoid: SigmoidUnit) -> Self {
        self.sigmoid = sigmoid;
        self
    }

    /// Returns a copy with the given noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Returns a copy with the given ADC resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 16`.
    #[must_use]
    pub fn with_adc_bits(mut self, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "ADC bits must be 1..=16");
        self.adc_bits = bits;
        self
    }

    /// Returns a copy with the given DTC resolution for the visible
    /// clamps.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 16`.
    #[must_use]
    pub fn with_dtc_bits(mut self, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "DTC bits must be 1..=16");
        self.dtc_bits = bits;
        self
    }

    /// Returns a copy with the given positive-phase settle duration in
    /// phase points.
    ///
    /// # Panics
    ///
    /// Panics if `points == 0`.
    #[must_use]
    pub fn with_settle_phase_points(mut self, points: u64) -> Self {
        assert!(points >= 1, "need at least one settle phase point");
        self.settle_phase_points = points;
        self
    }

    /// Returns a copy with the given negative-phase anneal duration in
    /// phase points.
    ///
    /// # Panics
    ///
    /// Panics if `points == 0`.
    #[must_use]
    pub fn with_anneal_phase_points(mut self, points: u64) -> Self {
        assert!(points >= 1, "need at least one anneal phase point");
        self.anneal_phase_points = points;
        self
    }
}

impl Default for BgfConfig {
    /// Packet `2⁻¹¹`, weight span `±4`, 10 particles, 2 negative sweeps,
    /// ideal analog front end, 8-bit converters, 50/100 phase points per
    /// settle/anneal.
    fn default() -> Self {
        BgfConfig {
            pump_ratio: 1.0 / 2048.0,
            weight_scale: 4.0,
            particles: 10,
            negative_sweeps: 2,
            sigmoid: SigmoidUnit::ideal(),
            noise: NoiseModel::noiseless(),
            dtc_bits: 8,
            adc_bits: 8,
            settle_phase_points: 50,
            anneal_phase_points: 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gs_builder_roundtrip() {
        let c = GsConfig::default()
            .with_k(3)
            .with_learning_rate(0.2)
            .with_dtc_bits(4);
        assert_eq!(c.k(), 3);
        assert_eq!(c.learning_rate(), 0.2);
        assert_eq!(c.dtc_bits(), 4);
    }

    #[test]
    fn bgf_builder_roundtrip() {
        let c = BgfConfig::default()
            .with_pump_ratio(0.01)
            .with_weight_scale(2.0)
            .with_particles(3)
            .with_negative_sweeps(4)
            .with_adc_bits(10)
            .with_dtc_bits(6)
            .with_settle_phase_points(20)
            .with_anneal_phase_points(200);
        assert_eq!(c.pump_ratio(), 0.01);
        assert_eq!(c.weight_scale(), 2.0);
        assert_eq!(c.particles(), 3);
        assert_eq!(c.negative_sweeps(), 4);
        assert_eq!(c.adc_bits(), 10);
        assert_eq!(c.dtc_bits(), 6);
        assert_eq!(c.settle_phase_points(), 20);
        assert_eq!(c.anneal_phase_points(), 200);
    }

    #[test]
    fn gs_kernel_builder_roundtrip() {
        assert_eq!(GsConfig::default().kernel(), GsKernel::Packed);
        let c = GsConfig::default().with_kernel(GsKernel::Dense);
        assert_eq!(c.kernel(), GsKernel::Dense);
    }

    #[test]
    fn gs_settle_phase_points_builder() {
        let c = GsConfig::default().with_settle_phase_points(75);
        assert_eq!(c.settle_phase_points(), 75);
    }

    #[test]
    #[should_panic(expected = "settle phase point")]
    fn gs_rejects_zero_settle() {
        let _ = GsConfig::default().with_settle_phase_points(0);
    }

    #[test]
    #[should_panic(expected = "pump ratio")]
    fn bgf_rejects_bad_ratio() {
        let _ = BgfConfig::default().with_pump_ratio(0.9);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn gs_rejects_zero_k() {
        let _ = GsConfig::default().with_k(0);
    }
}
