//! Bit-packed binary-state kernels for the sampling hot path.
//!
//! Every hot loop in the stack moves RBM states around as dense `f64`
//! 0/1 matrices and pays a full dense GEMM for products whose left
//! operand is binary. The paper's accelerator economics rest on exactly
//! this structure — binary node states driving an analog vector-matrix
//! product (§3.2) — and the same structure is free throughput in
//! software: a batch of binary states packs 64 states per `u64` word,
//! and `states · W` reduces to *summing the weight rows selected by the
//! set bits* — no multiplies, zero states skipped 64 at a time.
//!
//! The packed product is **bit-identical** to the scalar row-loop
//! reference kernel ([`scalar_ref_gemm`]): both accumulate the fan-in
//! terms of every output element in ascending index order, and skipping
//! an exact-zero term is a floating-point no-op (`x + 0.0 == x` for
//! every finite `x`, and `1.0 · w == w`). It is equally bit-identical
//! to the vendored `ndarray` GEMM's non-transposed kernels, which
//! accumulate in the same `ikj` order — so flipping a sampler between
//! the packed and dense kernels never changes a sampled bit, only the
//! time it takes to produce it. [`GsKernel`](crate::GsKernel) selects
//! between them; [`HardwareCounters`](ember_substrate::HardwareCounters)
//! records which kernel served each call
//! (`packed_kernel_calls` / `dense_kernel_calls`).
//!
//! # Example
//!
//! ```
//! use ember_core::kernels::{binary_gemm, BitMatrix};
//! use ndarray::{arr1, arr2, Array2};
//!
//! let states = arr2(&[[1.0, 0.0, 1.0], [0.0, 0.0, 0.0]]);
//! let w = arr2(&[[0.5, -1.0], [9.0, 9.0], [0.25, 2.0]]);
//! let bits = BitMatrix::from_batch(&states).expect("binary batch");
//! let out = binary_gemm(&bits, &w, Some(&arr1(&[0.0, 1.0]).view()));
//! assert_eq!(out, arr2(&[[0.75, 2.0], [0.0, 1.0]]));
//! ```

use ndarray::{Array2, ArrayView1};

/// Number of `u64` words needed to hold `cols` bits.
fn words_for(cols: usize) -> usize {
    cols.div_ceil(64)
}

/// A batch of binary states packed row-major into `u64` words: bit `j`
/// of row `r` lives at word `j / 64`, bit position `j % 64` (LSB
/// first). Rows are padded to a whole word; padding bits are always
/// zero.
///
/// This is the in-flight representation of everything the substrates
/// exchange after the first half-step: comparator latches, thresholded
/// BRIM node voltages, Metropolis spin read-outs — all exact `{0, 1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix of the given logical dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Packs a dense batch of **exactly binary** levels. Returns `None`
    /// if any entry is neither `0.0` nor `1.0` — the caller falls back
    /// to the dense kernel (multi-bit DTC gray levels, or a hostile
    /// input).
    ///
    /// The scan is branchless per element (comparisons fold into the
    /// word and a validity accumulator), so packing costs a small
    /// fraction of the product it enables even on wide batches.
    pub fn from_batch(batch: &Array2<f64>) -> Option<Self> {
        let (rows, cols) = batch.dim();
        let mut packed = BitMatrix::zeros(rows, cols);
        let data = batch.as_slice();
        let mut all_binary = true;
        for (r, row) in data.chunks(cols.max(1)).enumerate().take(rows) {
            let words = &mut packed.words[r * packed.words_per_row..(r + 1) * packed.words_per_row];
            for (word, chunk) in words.iter_mut().zip(row.chunks(64)) {
                let mut w = 0u64;
                for (j, &x) in chunk.iter().enumerate() {
                    w |= u64::from(x == 1.0) << j;
                    all_binary &= x == 0.0 || x == 1.0;
                }
                *word = w;
            }
        }
        all_binary.then_some(packed)
    }

    /// Logical row count.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Logical column count (bits per row).
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Words per packed row (`ncols` rounded up to a whole `u64`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable packed words of row `r` — the seam the BRIM's packed
    /// threshold reads write into without materializing a `Vec<bool>`.
    ///
    /// Writers must keep the padding bits (bit positions ≥ `ncols()` of
    /// the last word) zero; [`binary_gemm`] relies on it.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// The bit at `(r, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, r: usize, j: usize) -> bool {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        (self.row_words(r)[j / 64] >> (j % 64)) & 1 == 1
    }

    /// Sets the bit at `(r, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, r: usize, j: usize, bit: bool) {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        let word = &mut self.row_words_mut(r)[j / 64];
        if bit {
            *word |= 1u64 << (j % 64);
        } else {
            *word &= !(1u64 << (j % 64));
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unpacks to the dense `f64` 0/1 representation the `Substrate`
    /// API exchanges.
    pub fn to_dense(&self) -> Array2<f64> {
        let mut data = vec![0.0; self.rows * self.cols];
        for (r, out) in data.chunks_mut(self.cols.max(1)).enumerate() {
            for (w, &word) in self.row_words(r).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let j = w * 64 + bits.trailing_zeros() as usize;
                    out[j] = 1.0;
                    bits &= bits - 1;
                }
            }
        }
        Array2::from_shape_vec((self.rows, self.cols), data).expect("consistent dims")
    }
}

/// `o += w`, element-wise — the only arithmetic the packed product
/// performs (selected weight rows are *summed*, never multiplied).
#[inline]
fn add_row(o: &mut [f64], w: &[f64]) {
    for (o, &x) in o.iter_mut().zip(w) {
        *o += x;
    }
}

/// One packed row × `W`: set bits accumulated in ascending index order.
fn binary_gemv(orow: &mut [f64], row_words: &[u64], wdata: &[f64], out_width: usize) {
    for (wi, &word) in row_words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let i = wi * 64 + bits.trailing_zeros() as usize;
            add_row(orow, &wdata[i * out_width..(i + 1) * out_width]);
            bits &= bits - 1;
        }
    }
}

/// `states · W (+ bias)` with a bit-packed binary left operand: for
/// every row, the weight rows selected by the set bits are accumulated
/// in ascending index order — no multiplies, zero states skipped a word
/// (64 states) at a time. Output rows are processed four at a time over
/// the block's set-bit *union*, so a weight row shared by several
/// chains is streamed from memory once per block instead of once per
/// chain (the same traffic-blocking idea as the vendored dense GEMM's
/// four-row `ikj` kernel) — each row still receives exactly its own
/// weight rows in ascending order, so the blocking is invisible in the
/// bits.
///
/// Bit-identical to [`scalar_ref_gemm`] on the unpacked batch (see the
/// module docs for why), and therefore to the dense `ikj` GEMM the
/// samplers used before this kernel existed.
///
/// # Panics
///
/// Panics if `states.ncols() != w.nrows()` or the bias length differs
/// from `w.ncols()`.
pub fn binary_gemm(
    states: &BitMatrix,
    w: &Array2<f64>,
    bias: Option<&ArrayView1<'_, f64>>,
) -> Array2<f64> {
    let (fan_in, out_width) = w.dim();
    assert_eq!(states.ncols(), fan_in, "fan-in mismatch (binary_gemm)");
    if let Some(b) = bias {
        assert_eq!(b.len(), out_width, "fan-out mismatch (binary_gemm)");
    }
    let wdata = w.as_slice();
    let wpr = states.words_per_row();
    const BLOCK: usize = 8;
    let mut data = vec![0.0; states.nrows() * out_width];
    let mut wblocks = states.words.chunks(BLOCK * wpr.max(1));
    let mut oblocks = data.chunks_mut(BLOCK * out_width.max(1));
    for (wblock, oblock) in (&mut wblocks).zip(&mut oblocks) {
        if wblock.len() == BLOCK * wpr && wpr > 0 {
            let orows: Vec<&mut [f64]> = oblock.chunks_mut(out_width).collect();
            let mut orows: [&mut [f64]; BLOCK] = orows.try_into().expect("full block");
            // Column tiling keeps the block's output working set
            // (BLOCK×TILE f64) L1-resident on wide outputs; per output
            // element the accumulation order is untouched.
            const TILE: usize = 448;
            let mut t0 = 0;
            while t0 < out_width {
                let t1 = (t0 + TILE).min(out_width);
                for wi in 0..wpr {
                    let mut union = 0u64;
                    for k in 0..BLOCK {
                        union |= wblock[k * wpr + wi];
                    }
                    while union != 0 {
                        let bit = union.trailing_zeros();
                        let i = wi * 64 + bit as usize;
                        let wrow = &wdata[i * out_width + t0..i * out_width + t1];
                        let mask = 1u64 << bit;
                        for (k, orow) in orows.iter_mut().enumerate() {
                            if wblock[k * wpr + wi] & mask != 0 {
                                add_row(&mut orow[t0..t1], wrow);
                            }
                        }
                        union &= union - 1;
                    }
                }
                t0 = t1;
            }
        } else {
            // Trailing block of fewer than BLOCK rows.
            for (row_words, orow) in wblock
                .chunks(wpr.max(1))
                .zip(oblock.chunks_mut(out_width.max(1)))
            {
                binary_gemv(orow, row_words, wdata, out_width);
            }
        }
    }
    if let Some(b) = bias {
        for orow in data.chunks_mut(out_width.max(1)) {
            for (o, &x) in orow.iter_mut().zip(b.iter()) {
                *o += x;
            }
        }
    }
    Array2::from_shape_vec((states.nrows(), out_width), data).expect("consistent dims")
}

/// The scalar row-loop reference kernel: `out[r][j] = Σ_i states[r][i] ·
/// W[i][j] (+ bias[j])`, fan-in terms accumulated in ascending index
/// order, zero terms *included*. This is the summation order of the
/// seed's row-at-a-time sampling strategy
/// (`AnalogSampler::sample_layer_reference`), kept here as the pinned
/// ground truth the packed kernel is property-tested against.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn scalar_ref_gemm(
    states: &Array2<f64>,
    w: &Array2<f64>,
    bias: Option<&ArrayView1<'_, f64>>,
) -> Array2<f64> {
    let (fan_in, out_width) = w.dim();
    assert_eq!(states.ncols(), fan_in, "fan-in mismatch (scalar_ref_gemm)");
    if let Some(b) = bias {
        assert_eq!(b.len(), out_width, "fan-out mismatch (scalar_ref_gemm)");
    }
    let mut out = Array2::zeros((states.nrows(), out_width));
    for r in 0..states.nrows() {
        for j in 0..out_width {
            let mut acc = 0.0;
            for i in 0..fan_in {
                acc += states[[r, i]] * w[[i, j]];
            }
            if let Some(b) = bias {
                acc += b[j];
            }
            out[[r, j]] = acc;
        }
    }
    out
}

/// Whether every entry of `batch` is exactly `0.0` or `1.0` — the
/// precondition for packing, and the documented domain on which every
/// `Substrate::quantize_batch` implementation is the identity (so
/// callers may skip quantization entirely for binary feedback).
pub fn is_binary(batch: &Array2<f64>) -> bool {
    batch.iter().all(|&x| x == 0.0 || x == 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::{arr1, arr2};
    use rand::{Rng, SeedableRng};

    #[test]
    fn pack_rejects_non_binary() {
        let gray = arr2(&[[0.0, 0.5], [1.0, 0.0]]);
        assert!(BitMatrix::from_batch(&gray).is_none());
        assert!(!is_binary(&gray));
        let binary = arr2(&[[0.0, 1.0], [1.0, 0.0]]);
        assert!(BitMatrix::from_batch(&binary).is_some());
        assert!(is_binary(&binary));
    }

    #[test]
    fn pack_unpack_roundtrip_at_word_boundaries() {
        for cols in [1, 63, 64, 65, 127, 128, 130] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(cols as u64);
            let dense = Array2::from_shape_fn((3, cols), |_| f64::from(rng.random_bool(0.5)));
            let bits = BitMatrix::from_batch(&dense).expect("binary");
            assert_eq!(bits.to_dense(), dense, "cols = {cols}");
            assert_eq!(bits.count_ones() as f64, dense.sum(), "cols = {cols}");
        }
    }

    #[test]
    fn get_set_round_trip() {
        let mut bits = BitMatrix::zeros(2, 70);
        assert!(!bits.get(1, 69));
        bits.set(1, 69, true);
        assert!(bits.get(1, 69));
        assert_eq!(bits.count_ones(), 1);
        bits.set(1, 69, false);
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn binary_gemm_selects_weight_rows() {
        let states = arr2(&[[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]);
        let w = arr2(&[[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]]);
        let bits = BitMatrix::from_batch(&states).unwrap();
        let out = binary_gemm(&bits, &w, None);
        assert_eq!(out, arr2(&[[101.0, 202.0], [10.0, 20.0]]));
        let with_bias = binary_gemm(&bits, &w, Some(&arr1(&[0.5, -0.5]).view()));
        assert_eq!(with_bias, arr2(&[[101.5, 201.5], [10.5, 19.5]]));
    }

    #[test]
    fn binary_gemm_bit_identical_to_scalar_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for &(rows, fan_in, out) in &[(5, 67, 9), (1, 64, 3), (8, 130, 17)] {
            let states = Array2::from_shape_fn((rows, fan_in), |_| f64::from(rng.random_bool(0.4)));
            let w = Array2::from_shape_fn((fan_in, out), |_| rng.random_range(-1.0..1.0));
            let bias = ndarray::Array1::from_shape_fn(out, |_| rng.random_range(-1.0..1.0));
            let bits = BitMatrix::from_batch(&states).unwrap();
            let packed = binary_gemm(&bits, &w, Some(&bias.view()));
            let reference = scalar_ref_gemm(&states, &w, Some(&bias.view()));
            let packed_bits: Vec<u64> = packed.iter().map(|x| x.to_bits()).collect();
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(packed_bits, ref_bits, "{rows}x{fan_in}x{out}");
        }
    }

    #[test]
    fn binary_gemm_bit_identical_to_dense_dot() {
        // The vendored GEMM's non-transposed kernels accumulate in the
        // same ikj order, so the packed product must match `.dot()`
        // bitwise too — the property that lets the packed kernel be the
        // default without perturbing a single golden bit.
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let states = Array2::from_shape_fn((6, 100), |_| f64::from(rng.random_bool(0.3)));
        let w = Array2::from_shape_fn((100, 11), |_| rng.random_range(-1.0..1.0));
        let bits = BitMatrix::from_batch(&states).unwrap();
        let packed = binary_gemm(&bits, &w, None);
        let dense = states.dot(&w);
        let packed_bits: Vec<u64> = packed.iter().map(|x| x.to_bits()).collect();
        let dense_bits: Vec<u64> = dense.iter().map(|x| x.to_bits()).collect();
        assert_eq!(packed_bits, dense_bits);
    }

    #[test]
    #[should_panic(expected = "fan-in mismatch")]
    fn binary_gemm_rejects_mismatched_fan_in() {
        let bits = BitMatrix::zeros(1, 3);
        let w = Array2::zeros((4, 2));
        let _ = binary_gemm(&bits, &w, None);
    }
}
