//! Bit-packed binary-state kernels for the sampling hot path.
//!
//! Every hot loop in the stack moves RBM states around as dense `f64`
//! 0/1 matrices and pays a full dense GEMM for products whose left
//! operand is binary. The paper's accelerator economics rest on exactly
//! this structure — binary node states driving an analog vector-matrix
//! product (§3.2) — and the same structure is free throughput in
//! software: a batch of binary states packs 64 states per `u64` word,
//! and `states · W` reduces to *summing the weight rows selected by the
//! set bits* — no multiplies, zero states skipped 64 at a time.
//!
//! The packed product is **bit-identical** to the scalar row-loop
//! reference kernel ([`scalar_ref_gemm`]): both accumulate the fan-in
//! terms of every output element in ascending index order, and skipping
//! an exact-zero term is a floating-point no-op (`x + 0.0 == x` for
//! every finite `x`, and `1.0 · w == w`). It is equally bit-identical
//! to the vendored `ndarray` GEMM's non-transposed kernels, which
//! accumulate in the same `ikj` order — so flipping a sampler between
//! the packed and dense kernels never changes a sampled bit, only the
//! time it takes to produce it. [`GsKernel`](crate::GsKernel) selects
//! between them; [`HardwareCounters`](ember_substrate::HardwareCounters)
//! records which kernel served each call
//! (`packed_kernel_calls` / `dense_kernel_calls`).
//!
//! # Example
//!
//! ```
//! use ember_core::kernels::{binary_gemm, BitMatrix};
//! use ndarray::{arr1, arr2, Array2};
//!
//! let states = arr2(&[[1.0, 0.0, 1.0], [0.0, 0.0, 0.0]]);
//! let w = arr2(&[[0.5, -1.0], [9.0, 9.0], [0.25, 2.0]]);
//! let bits = BitMatrix::from_batch(&states).expect("binary batch");
//! let out = binary_gemm(&bits, &w, Some(&arr1(&[0.0, 1.0]).view()));
//! assert_eq!(out, arr2(&[[0.75, 2.0], [0.0, 1.0]]));
//! ```

use ndarray::{Array1, Array2, ArrayView1};

// The SIMD kernel tier lives next to the vendored GEMM it accelerates
// (`ndarray::simd`); re-exported here so substrate code, benches, and
// deployments can inspect or pin the tier through the facade.
pub use ndarray::simd::{active_tier, force_tier, simd_active, SimdTier};

/// Number of `u64` words needed to hold `cols` bits.
fn words_for(cols: usize) -> usize {
    cols.div_ceil(64)
}

/// A batch of binary states packed row-major into `u64` words: bit `j`
/// of row `r` lives at word `j / 64`, bit position `j % 64` (LSB
/// first). Rows are padded to a whole word; padding bits are always
/// zero.
///
/// This is the in-flight representation of everything the substrates
/// exchange after the first half-step: comparator latches, thresholded
/// BRIM node voltages, Metropolis spin read-outs — all exact `{0, 1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix of the given logical dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Packs a dense batch of **exactly binary** levels. Returns `None`
    /// if any entry is neither `0.0` nor `1.0` — the caller falls back
    /// to the dense kernel (multi-bit DTC gray levels, or a hostile
    /// input).
    ///
    /// The scan is branchless per element (comparisons fold into the
    /// word and a validity accumulator), so packing costs a small
    /// fraction of the product it enables even on wide batches.
    pub fn from_batch(batch: &Array2<f64>) -> Option<Self> {
        let (rows, cols) = batch.dim();
        let mut packed = BitMatrix::zeros(rows, cols);
        let data = batch.as_slice();
        let mut all_binary = true;
        for (r, row) in data.chunks(cols.max(1)).enumerate().take(rows) {
            let words = &mut packed.words[r * packed.words_per_row..(r + 1) * packed.words_per_row];
            for (word, chunk) in words.iter_mut().zip(row.chunks(64)) {
                let mut w = 0u64;
                for (j, &x) in chunk.iter().enumerate() {
                    w |= u64::from(x == 1.0) << j;
                    all_binary &= x == 0.0 || x == 1.0;
                }
                *word = w;
            }
        }
        all_binary.then_some(packed)
    }

    /// Logical row count.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Logical column count (bits per row).
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Words per packed row (`ncols` rounded up to a whole `u64`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable packed words of row `r` — the seam the BRIM's packed
    /// threshold reads write into without materializing a `Vec<bool>`.
    ///
    /// Writers must keep the padding bits (bit positions ≥ `ncols()` of
    /// the last word) zero; [`binary_gemm`] relies on it.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// The bit at `(r, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, r: usize, j: usize) -> bool {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        (self.row_words(r)[j / 64] >> (j % 64)) & 1 == 1
    }

    /// Sets the bit at `(r, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, r: usize, j: usize, bit: bool) {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        let word = &mut self.row_words_mut(r)[j / 64];
        if bit {
            *word |= 1u64 << (j % 64);
        } else {
            *word &= !(1u64 << (j % 64));
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unpacks to the dense `f64` 0/1 representation the `Substrate`
    /// API exchanges.
    pub fn to_dense(&self) -> Array2<f64> {
        let mut data = vec![0.0; self.rows * self.cols];
        for (r, out) in data.chunks_mut(self.cols.max(1)).enumerate() {
            for (w, &word) in self.row_words(r).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let j = w * 64 + bits.trailing_zeros() as usize;
                    out[j] = 1.0;
                    bits &= bits - 1;
                }
            }
        }
        Array2::from_shape_vec((self.rows, self.cols), data).expect("consistent dims")
    }
}

/// One packed row × `W`: set bits collected in ascending index order
/// into the `idx` scratch, then accumulated by the register-tiled tier
/// kernel ([`ndarray::simd::sum_selected_rows`]) — the only arithmetic
/// the packed product performs (selected weight rows are *summed*,
/// never multiplied).
fn binary_gemv(
    orow: &mut [f64],
    row_words: &[u64],
    wdata: &[f64],
    out_width: usize,
    idx: &mut Vec<u32>,
) {
    idx.clear();
    for (wi, &word) in row_words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            idx.push((wi * 64) as u32 + bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
    ndarray::simd::sum_selected_rows(orow, wdata, out_width, idx);
}

/// Minimum batch-chunk size for the transposed-mask block path: below
/// this the per-row register-tiled kernel wins (the block path's gain
/// is amortizing the weight stream over many rows).
const BLOCK_MIN_ROWS: usize = 8;

/// Whether the transposed-mask block kernel beats the per-row stream
/// for this product shape — empirical dispatch for the L2-resident
/// regime (measured on the BENCH_PR7 shapes). The block scatter wins
/// when the output rows are short enough that the per-row weight
/// stream is stride-bound but long enough to amortize the per-weight-row
/// mask walk, the fan-in is tall enough that deduplicating the weight
/// stream matters, and the output row stride does not alias a handful
/// of L1 sets (4 KiB-multiple strides map every row to the same sets
/// and thrash the scatter's working set).
fn block_path_wins(fan_in: usize, out_width: usize, rows_here: usize) -> bool {
    rows_here >= BLOCK_MIN_ROWS
        && fan_in >= 2 * out_width
        && (128..=448).contains(&out_width)
        && !(out_width * 8).is_multiple_of(4096)
}

/// `states · W (+ bias)` with a bit-packed binary left operand: the
/// weight rows selected by the set bits are accumulated in ascending
/// index order — no multiplies, zero states skipped a word (64 states)
/// at a time. Batches whose shape favors it ([`block_path_wins`]) go
/// through the transposed-mask block kernel
/// ([`ndarray::simd::sum_selected_rows_block`], in 64-row chunks),
/// which streams the weight matrix from L2 **once per chunk** instead
/// of once per batch row — the per-row formulation is memory-bound, not
/// compute-bound, as soon as the matrix outgrows L1. Other shapes and
/// small batches use the per-row register-tiled kernel
/// ([`ndarray::simd::sum_selected_rows`]). Per output element the
/// addition chain is identical either way, so the choice is invisible
/// in the bits.
///
/// Bit-identical to [`scalar_ref_gemm`] on the unpacked batch (see the
/// module docs for why), and therefore to the dense `ikj` GEMM the
/// samplers used before this kernel existed.
///
/// # Panics
///
/// Panics if `states.ncols() != w.nrows()` or the bias length differs
/// from `w.ncols()`.
pub fn binary_gemm(
    states: &BitMatrix,
    w: &Array2<f64>,
    bias: Option<&ArrayView1<'_, f64>>,
) -> Array2<f64> {
    let (fan_in, out_width) = w.dim();
    assert_eq!(states.ncols(), fan_in, "fan-in mismatch (binary_gemm)");
    if let Some(b) = bias {
        assert_eq!(b.len(), out_width, "fan-out mismatch (binary_gemm)");
    }
    let wdata = w.as_slice();
    let wpr = states.words_per_row();
    let nrows = states.nrows();
    let mut data = vec![0.0; nrows * out_width];
    let mut idx: Vec<u32> = Vec::with_capacity(fan_in);
    let mut tmask: Vec<u64> = Vec::new();
    let mut start = 0;
    while start < nrows {
        let rows_here = (nrows - start).min(64);
        if !block_path_wins(fan_in, out_width, rows_here) {
            for r in start..start + rows_here {
                binary_gemv(
                    &mut data[r * out_width..(r + 1) * out_width],
                    &states.words[r * wpr..(r + 1) * wpr],
                    wdata,
                    out_width,
                    &mut idx,
                );
            }
        } else {
            // Transpose this chunk's selection bits: bit `r` of
            // `tmask[i]` says chunk row `r` selects weight row `i`.
            tmask.clear();
            tmask.resize(fan_in, 0);
            for r in 0..rows_here {
                let row_words = &states.words[(start + r) * wpr..(start + r + 1) * wpr];
                for (wi, &word) in row_words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let i = wi * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        tmask[i] |= 1u64 << r;
                    }
                }
            }
            ndarray::simd::sum_selected_rows_block(
                &mut data[start * out_width..(start + rows_here) * out_width],
                out_width,
                wdata,
                &tmask,
            );
        }
        start += rows_here;
    }
    if let Some(b) = bias {
        for orow in data.chunks_mut(out_width.max(1)) {
            for (o, &x) in orow.iter_mut().zip(b.iter()) {
                *o += x;
            }
        }
    }
    Array2::from_shape_vec((states.nrows(), out_width), data).expect("consistent dims")
}

/// The scalar row-loop reference kernel: `out[r][j] = Σ_i states[r][i] ·
/// W[i][j] (+ bias[j])`, fan-in terms accumulated in ascending index
/// order, zero terms *included*. This is the summation order of the
/// seed's row-at-a-time sampling strategy
/// (`AnalogSampler::sample_layer_reference`), kept here as the pinned
/// ground truth the packed kernel is property-tested against.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn scalar_ref_gemm(
    states: &Array2<f64>,
    w: &Array2<f64>,
    bias: Option<&ArrayView1<'_, f64>>,
) -> Array2<f64> {
    let (fan_in, out_width) = w.dim();
    assert_eq!(states.ncols(), fan_in, "fan-in mismatch (scalar_ref_gemm)");
    if let Some(b) = bias {
        assert_eq!(b.len(), out_width, "fan-out mismatch (scalar_ref_gemm)");
    }
    let mut out = Array2::zeros((states.nrows(), out_width));
    for r in 0..states.nrows() {
        for j in 0..out_width {
            let mut acc = 0.0;
            for i in 0..fan_in {
                acc += states[[r, i]] * w[[i, j]];
            }
            if let Some(b) = bias {
                acc += b[j];
            }
            out[[r, j]] = acc;
        }
    }
    out
}

/// Whether every entry of `batch` is exactly `0.0` or `1.0` — the
/// precondition for packing, and the documented domain on which every
/// `Substrate::quantize_batch` implementation is the identity (so
/// callers may skip quantization entirely for binary feedback).
pub fn is_binary(batch: &Array2<f64>) -> bool {
    batch.iter().all(|&x| x == 0.0 || x == 1.0)
}

/// The serial per-chain local-field kernel: for ONE exactly-binary
/// input row, `field[j] = Σ_{i : input[i] == 1} w[i][j]` — the weight
/// rows selected by the set states, accumulated in ascending index
/// order on the SIMD tier. This is the single-chain counterpart of
/// [`binary_gemm`], and the piece a serial Gibbs chain actually spends
/// its time in: no batch exists to amortize a GEMM over, so the only
/// speedup available is making each row's field evaluation itself
/// vector-wide. Used by `GsEngine::SerialReference`
/// (`SoftwareGibbs::sample_hidden_row` / `sample_visible_row`; the
/// reverse direction passes the cached `Wᵀ`), and mirrored by the
/// BRIM per-row power-cycle path and the annealer's per-spin sweeps,
/// which run the same [`ndarray::simd`] primitives through the
/// vendored GEMV.
///
/// Bit-identical to [`scalar_ref_field_row`] — and therefore to the
/// field loop of `AnalogSampler::sample_layer_reference` — by the
/// module-docs argument: per output element both sides add the same
/// terms in the same ascending-`i` order, skipped zero terms are
/// floating-point no-ops, and `1.0 · w == w`.
///
/// Returns `None` when the input row is not exactly binary (multi-bit
/// DTC gray levels): callers fall back to the dense scalar reference.
///
/// # Panics
///
/// Panics if `input.len() != w.nrows()`.
pub fn binary_field_row(input: &ArrayView1<'_, f64>, w: &Array2<f64>) -> Option<Array1<f64>> {
    let (fan_in, out_width) = w.dim();
    assert_eq!(input.len(), fan_in, "fan-in mismatch (binary_field_row)");
    let mut idx: Vec<u32> = Vec::with_capacity(fan_in);
    for (i, &x) in input.iter().enumerate() {
        if x == 1.0 {
            idx.push(i as u32);
        } else if x != 0.0 {
            return None;
        }
    }
    let mut field = vec![0.0; out_width];
    ndarray::simd::sum_selected_rows(&mut field, w.as_slice(), out_width, &idx);
    Some(Array1::from_vec(field))
}

/// Scalar reference for [`binary_field_row`]: the field loop of
/// `AnalogSampler::sample_layer_reference` without the bias term —
/// `field[j] = Σ_i input[i] · w[i][j]`, ascending `i`, zero terms
/// included, folded from `+0.0`. Pinned ground truth for the
/// serial-field proptests.
///
/// The fold is written out explicitly rather than via
/// `Iterator::sum`, which returns a lone term unchanged and so can
/// yield `-0.0` for a single-fan-in zero input where the fold gives
/// `+0.0`. The sign of that zero is unobservable in sampled bits
/// (bias add and sigmoid erase it), but this reference pins *field*
/// bits exactly.
///
/// # Panics
///
/// Panics if `input.len() != w.nrows()`.
pub fn scalar_ref_field_row(input: &ArrayView1<'_, f64>, w: &Array2<f64>) -> Array1<f64> {
    let (fan_in, out_width) = w.dim();
    assert_eq!(
        input.len(),
        fan_in,
        "fan-in mismatch (scalar_ref_field_row)"
    );
    Array1::from_shape_fn(out_width, |j| {
        let mut acc = 0.0;
        for i in 0..fan_in {
            acc += input[i] * w[[i, j]];
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::{arr1, arr2};
    use rand::{Rng, SeedableRng};

    #[test]
    fn pack_rejects_non_binary() {
        let gray = arr2(&[[0.0, 0.5], [1.0, 0.0]]);
        assert!(BitMatrix::from_batch(&gray).is_none());
        assert!(!is_binary(&gray));
        let binary = arr2(&[[0.0, 1.0], [1.0, 0.0]]);
        assert!(BitMatrix::from_batch(&binary).is_some());
        assert!(is_binary(&binary));
    }

    #[test]
    fn pack_unpack_roundtrip_at_word_boundaries() {
        for cols in [1, 63, 64, 65, 127, 128, 130] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(cols as u64);
            let dense = Array2::from_shape_fn((3, cols), |_| f64::from(rng.random_bool(0.5)));
            let bits = BitMatrix::from_batch(&dense).expect("binary");
            assert_eq!(bits.to_dense(), dense, "cols = {cols}");
            assert_eq!(bits.count_ones() as f64, dense.sum(), "cols = {cols}");
        }
    }

    #[test]
    fn get_set_round_trip() {
        let mut bits = BitMatrix::zeros(2, 70);
        assert!(!bits.get(1, 69));
        bits.set(1, 69, true);
        assert!(bits.get(1, 69));
        assert_eq!(bits.count_ones(), 1);
        bits.set(1, 69, false);
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn binary_gemm_selects_weight_rows() {
        let states = arr2(&[[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]);
        let w = arr2(&[[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]]);
        let bits = BitMatrix::from_batch(&states).unwrap();
        let out = binary_gemm(&bits, &w, None);
        assert_eq!(out, arr2(&[[101.0, 202.0], [10.0, 20.0]]));
        let with_bias = binary_gemm(&bits, &w, Some(&arr1(&[0.5, -0.5]).view()));
        assert_eq!(with_bias, arr2(&[[101.5, 201.5], [10.5, 19.5]]));
    }

    #[test]
    fn binary_gemm_bit_identical_to_scalar_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        // Batch sizes straddle the per-row/block threshold and the
        // 64-row chunk boundary of the transposed-mask block path, and
        // the last two shapes satisfy `block_path_wins` so the
        // transposed scatter itself is exercised end to end.
        for &(rows, fan_in, out) in &[
            (5, 67, 9),
            (1, 64, 3),
            (8, 130, 17),
            (64, 300, 130),
            (67, 521, 131),
        ] {
            let states = Array2::from_shape_fn((rows, fan_in), |_| f64::from(rng.random_bool(0.4)));
            let w = Array2::from_shape_fn((fan_in, out), |_| rng.random_range(-1.0..1.0));
            let bias = ndarray::Array1::from_shape_fn(out, |_| rng.random_range(-1.0..1.0));
            let bits = BitMatrix::from_batch(&states).unwrap();
            let packed = binary_gemm(&bits, &w, Some(&bias.view()));
            let reference = scalar_ref_gemm(&states, &w, Some(&bias.view()));
            let packed_bits: Vec<u64> = packed.iter().map(|x| x.to_bits()).collect();
            let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(packed_bits, ref_bits, "{rows}x{fan_in}x{out}");
        }
    }

    #[test]
    fn binary_gemm_bit_identical_to_dense_dot() {
        // The vendored GEMM's non-transposed kernels accumulate in the
        // same ikj order, so the packed product must match `.dot()`
        // bitwise too — the property that lets the packed kernel be the
        // default without perturbing a single golden bit.
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let states = Array2::from_shape_fn((6, 100), |_| f64::from(rng.random_bool(0.3)));
        let w = Array2::from_shape_fn((100, 11), |_| rng.random_range(-1.0..1.0));
        let bits = BitMatrix::from_batch(&states).unwrap();
        let packed = binary_gemm(&bits, &w, None);
        let dense = states.dot(&w);
        let packed_bits: Vec<u64> = packed.iter().map(|x| x.to_bits()).collect();
        let dense_bits: Vec<u64> = dense.iter().map(|x| x.to_bits()).collect();
        assert_eq!(packed_bits, dense_bits);
    }

    #[test]
    #[should_panic(expected = "fan-in mismatch")]
    fn binary_gemm_rejects_mismatched_fan_in() {
        let bits = BitMatrix::zeros(1, 3);
        let w = Array2::zeros((4, 2));
        let _ = binary_gemm(&bits, &w, None);
    }
}
