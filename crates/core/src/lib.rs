//! # ember-core
//!
//! The paper's primary contribution: two accelerator architectures that
//! augment a (bipartite) Ising-machine substrate for energy-based learning.
//!
//! * [`GibbsSampler`] (GS, §3.2) — the substrate accelerates the *sampling*
//!   steps of the conventional CD-k algorithm (Algorithm 1): visible or
//!   hidden units are clamped through DTCs, the coupling mesh performs the
//!   analog vector-matrix product, a modified-inverter sigmoid unit and a
//!   comparator fed by thermal noise produce the Bernoulli samples. The
//!   host (a TPU in the paper's evaluation) still accumulates expectations
//!   and applies the weight updates, paying host↔substrate communication.
//!
//! * [`BoltzmannGradientFollower`] (BGF, §3.3) — the substrate becomes a
//!   *self-sufficient gradient follower*: weights live inside the coupling
//!   units as differential gate voltages `W = s·(V⁺ − V⁻)` and are
//!   incremented/decremented **in place** by charge-pump packets gated on
//!   `vᵢ·hⱼ` (Fig. 14), with the three algorithmic deviations of Eq. 12:
//!   mid-step updates, hardware nonlinearity `f_ij`, and an effective
//!   minibatch of 1. Negative phases run from `p` persistent particles.
//!   The host only initializes, streams samples, and reads the result once
//!   through ADCs at the end.
//!
//! The conditional-sampling seam itself is the [`substrate`] module: a
//! [`Substrate`] trait with three interchangeable backends
//! ([`SoftwareGibbs`], [`BrimSubstrate`], [`AnnealerSubstrate`]), over
//! which [`GibbsSampler`] and `ember_rbm`'s trainers are generic — the
//! paper's "drop-in replacement" claim as a type.
//!
//! The sampling hot path of every software backend runs on the
//! bit-packed binary-state kernels of the [`kernels`] module by
//! default: binary batches pack into a [`BitMatrix`] and the field GEMM
//! reduces to summing selected weight rows, bit-identical to the dense
//! GEMM ([`GsKernel`] selects; `HardwareCounters` records which kernel
//! served each call).
//!
//! Both are *behavioral* models at the same level as the paper's Matlab
//! models (§4.1): every circuit non-ideality — sigmoid transfer curve,
//! comparator offsets, DTC quantization, charge-sharing nonlinearity,
//! static variation and dynamic noise (§4.5) — flows through
//! [`ember_analog`]'s components.
//!
//! # Example: hardware-in-the-loop training
//!
//! ```
//! use ember_core::{BgfConfig, BoltzmannGradientFollower};
//! use ember_rbm::Rbm;
//! use ndarray::Array2;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let init = Rbm::random(6, 3, 0.01, &mut rng);
//! let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
//! let data = Array2::from_shape_fn((30, 6), |(i, _)| (i % 2) as f64);
//! bgf.train_epoch(&data, &mut rng);
//! let trained = bgf.read_out(&mut rng); // one-time ADC read-out
//! assert_eq!(trained.visible_len(), 6);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod gibbs_sampler;
mod gradient_follower;
pub mod kernels;
pub mod recovery;
mod sampler;
pub mod substrate;

pub use config::{BgfConfig, GsConfig, GsEngine, GsKernel};
pub use gibbs_sampler::GibbsSampler;
pub use gradient_follower::BoltzmannGradientFollower;
pub use kernels::BitMatrix;
pub use recovery::{couplings_checksum, screen_samples, verify_programming, RetryPolicy};
pub use sampler::AnalogSampler;
pub use substrate::{
    AnnealerSubstrate, BrimSubstrate, ReplicableSubstrate, SoftwareGibbs, Substrate, SubstrateSpec,
};

// Deprecated compat re-export: `HardwareCounters` moved to
// `ember_substrate` in PR 2 (so trainers can be generic over any
// backend). Use the canonical `ember_substrate::HardwareCounters`
// (also reachable as `ember::substrate::HardwareCounters` and
// `ember_core::substrate::HardwareCounters`); this top-level alias is
// hidden from the docs and kept only so pre-PR-2 downstream code keeps
// compiling.
#[doc(hidden)]
pub use ember_substrate::HardwareCounters;
