use ndarray::{Array1, Array2, Axis};
use rand::{Rng, RngCore};

use ember_rbm::{EpochStats, Rbm};
use ember_substrate::{HardwareCounters, Substrate};

use crate::config::GsEngine;
use crate::substrate::SoftwareGibbs;
use crate::GsConfig;

/// The Gibbs-sampler accelerator of §3.2: the Ising substrate performs the
/// conditional sampling of Algorithm 1; the host keeps the master weights
/// and applies the updates.
///
/// Operation per minibatch (§3.2 operation list):
/// 1. the host programs the coupling matrix and biases (host→substrate
///    transfer of `m·n + m + n` words);
/// 2. for every sample, the visible units are clamped through DTCs, the
///    hidden units settle and are read out (`h⁺`);
/// 3. the equivalent of `k`-step Gibbs sampling runs by alternately
///    clamping sides and letting the substrate produce samples;
/// 4. the host accumulates `⟨v⁺ᵀh⁺⟩ − ⟨v⁻ᵀh⁻⟩` and updates the weights.
///
/// The accelerator is generic over the sampling backend: any
/// [`Substrate`] slots in (the software analog node path, the BRIM
/// dynamical machine, a Metropolis annealer, future hardware). The
/// default backend is [`SoftwareGibbs`] — the analog node path with
/// static coupler variation frozen at construction — which reproduces
/// the pre-refactor behavior bit for bit.
///
/// # Example
///
/// ```
/// use ember_core::{GibbsSampler, GsConfig};
/// use ember_rbm::Rbm;
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let rbm = Rbm::random(6, 3, 0.01, &mut rng);
/// let mut gs = GibbsSampler::new(rbm, GsConfig::default(), &mut rng);
/// let data = Array2::from_shape_fn((20, 6), |(i, _)| (i % 2) as f64);
/// let stats = gs.train_epoch(&data, 10, &mut rng);
/// assert_eq!(stats.batches, 2);
/// assert!(gs.counters().positive_samples >= 20);
/// ```
///
/// # Example: hardware in the loop
///
/// ```
/// use ember_core::substrate::BrimSubstrate;
/// use ember_core::{GibbsSampler, GsConfig};
/// use ember_brim::BrimConfig;
/// use ember_rbm::Rbm;
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let rbm = Rbm::random(6, 3, 0.01, &mut rng);
/// let brim = BrimSubstrate::for_rbm(&rbm, BrimConfig::default())
///     .with_thermal_bath(0.02, 40);
/// let mut gs = GibbsSampler::with_substrate(rbm, GsConfig::default().with_k(1), brim);
/// let data = Array2::from_shape_fn((8, 6), |(i, _)| (i % 2) as f64);
/// gs.train_epoch(&data, 4, &mut rng);
/// assert!(gs.counters().phase_points > 0);
/// ```
#[derive(Debug, Clone)]
pub struct GibbsSampler<S: Substrate = SoftwareGibbs> {
    rbm: Rbm,
    config: GsConfig,
    substrate: S,
}

impl GibbsSampler<SoftwareGibbs> {
    /// Builds the accelerator around an initial host-side RBM with the
    /// default software analog substrate. Static coupler variation is
    /// sampled once here ("fabrication").
    pub fn new<R: Rng + ?Sized>(rbm: Rbm, config: GsConfig, rng: &mut R) -> Self {
        let substrate = SoftwareGibbs::new(rbm.visible_len(), rbm.hidden_len(), &config, rng);
        GibbsSampler::with_substrate(rbm, config, substrate)
    }
}

impl<S: Substrate> GibbsSampler<S> {
    /// Builds the accelerator around an arbitrary sampling backend. The
    /// substrate is programmed with the initial weights immediately
    /// (§3.2 step 1).
    ///
    /// # Panics
    ///
    /// Panics if the substrate's fabricated size differs from the RBM.
    pub fn with_substrate(rbm: Rbm, config: GsConfig, mut substrate: S) -> Self {
        assert_eq!(
            substrate.visible_len(),
            rbm.visible_len(),
            "substrate visible size mismatch"
        );
        assert_eq!(
            substrate.hidden_len(),
            rbm.hidden_len(),
            "substrate hidden size mismatch"
        );
        substrate.program(
            &rbm.weights().view(),
            &rbm.visible_bias().view(),
            &rbm.hidden_bias().view(),
        );
        GibbsSampler {
            rbm,
            config,
            substrate,
        }
    }

    /// The host-side master RBM (the weights the host believes it has).
    pub fn rbm(&self) -> &Rbm {
        &self.rbm
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &GsConfig {
        &self.config
    }

    /// The sampling backend.
    pub fn substrate(&self) -> &S {
        &self.substrate
    }

    /// Consumes the accelerator, returning the backend (with its
    /// accumulated counters and physical state).
    pub fn into_substrate(self) -> S {
        self.substrate
    }

    /// Cumulative hardware event counters (owned by the substrate; the
    /// host accounts its MAC/sample events there too so one counter set
    /// describes the whole accelerated run).
    pub fn counters(&self) -> &HardwareCounters {
        self.substrate.counters()
    }

    /// Programs the host weights onto the substrate (§3.2 step 2).
    fn program(&mut self) {
        self.substrate.program(
            &self.rbm.weights().view(),
            &self.rbm.visible_bias().view(),
            &self.rbm.hidden_bias().view(),
        );
    }

    /// One epoch of substrate-accelerated CD-k (Algorithm 1 with steps
    /// 9–15 offloaded). Returns epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM or `batch_size == 0`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        data: &Array2<f64>,
        batch_size: usize,
        rng: &mut R,
    ) -> EpochStats {
        assert_eq!(data.ncols(), self.rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut stats = Vec::new();
        let rows = data.nrows();
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            stats.push(self.train_batch(&batch, rng));
            start = end;
        }
        let collected: Vec<(f64, f64)> = stats;
        EpochStats::accumulate(&collected)
    }

    fn train_batch<R: Rng + ?Sized>(&mut self, batch: &Array2<f64>, rng: &mut R) -> (f64, f64) {
        match self.config.engine() {
            GsEngine::Batched => self.train_batch_batched(batch, rng),
            GsEngine::SerialReference => self.train_batch_serial(batch, rng),
        }
    }

    /// The batched engine: the whole minibatch of substrate chains runs
    /// at once — one [`Substrate::sample_hidden_batch`] /
    /// [`Substrate::sample_visible_batch`] call per conditional-sampling
    /// step, and the gradient accumulates through two GEMMs (`v⁺ᵀh⁺`,
    /// `v⁻ᵀh⁻`) instead of `batch` element-wise outer products. With the
    /// default [`SoftwareGibbs`] backend every sampling step is a single
    /// GEMM over the `batch × layer` matrix; results are bit-identical
    /// at every rayon thread count.
    fn train_batch_batched<R: Rng + ?Sized>(
        &mut self,
        batch: &Array2<f64>,
        rng: &mut R,
    ) -> (f64, f64) {
        let mut rng = rng;
        let rng: &mut dyn RngCore = &mut rng;
        let (m, n) = self.rbm.weights().dim();
        let rows = batch.nrows();
        let bs = rows as f64;
        let k = self.config.k();
        // Step 2: (re)program the current weights.
        self.program();

        // Steps 3–4: positive phase, whole minibatch at once. Only the
        // data needs DTC quantization — the read-outs fed back below are
        // already exactly {0, 1}, on which quantization is the identity.
        let clamped = self.substrate.quantize_batch(batch);
        let h_pos = self.substrate.sample_hidden_batch(&clamped, rng);
        // Steps 5–6: k-step Gibbs equivalent on the substrate, batched.
        let mut h_neg = h_pos.clone();
        let mut v_neg = batch.clone();
        for _ in 0..k {
            v_neg = self.substrate.sample_visible_batch(&h_neg, rng);
            h_neg = self.substrate.sample_hidden_batch(&v_neg, rng);
        }

        // Host-side event bookkeeping (settle phase points and read-out
        // words were counted by the substrate per call).
        let counters = self.substrate.counters_mut();
        counters.positive_samples += rows as u64;
        counters.negative_samples += rows as u64;
        counters.host_mac_ops += rows as u64 * 2 * (m * n) as u64;

        // Step 7/8: batched GEMM accumulation + host gradient update
        // (mirrors the software trainer's formulation).
        let alpha = self.config.learning_rate();
        let grad_w = (batch.t().dot(&h_pos) - v_neg.t().dot(&h_neg)) / bs;
        let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();
        let grad_bv = (batch.sum_axis(Axis(0)) - v_neg.sum_axis(Axis(0))) / bs;
        let grad_bh = (h_pos.sum_axis(Axis(0)) - h_neg.sum_axis(Axis(0))) / bs;
        *self.rbm.weights_mut() += &(&grad_w * alpha);
        *self.rbm.visible_bias_mut() += &(&grad_bv * (alpha));
        *self.rbm.hidden_bias_mut() += &(&grad_bh * (alpha));
        self.substrate.counters_mut().host_mac_ops += (m * n + m + n) as u64;

        let recon = (&v_neg - batch).mapv(f64::abs).mean().unwrap_or(0.0);
        (recon, grad_norm)
    }

    /// The original row-at-a-time scalar engine (kept as the measured
    /// baseline; see [`GsEngine::SerialReference`]). Chains flow through
    /// the substrate's row methods, one sample at a time.
    fn train_batch_serial<R: Rng + ?Sized>(
        &mut self,
        batch: &Array2<f64>,
        rng: &mut R,
    ) -> (f64, f64) {
        let mut rng = rng;
        let rng: &mut dyn RngCore = &mut rng;
        let (m, n) = self.rbm.weights().dim();
        let bs = batch.nrows() as f64;
        // Step 2: (re)program the current weights.
        self.program();

        let mut pos_w = Array2::<f64>::zeros((m, n));
        let mut neg_w = Array2::<f64>::zeros((m, n));
        let mut pos_bv = Array1::<f64>::zeros(m);
        let mut neg_bv = Array1::<f64>::zeros(m);
        let mut pos_bh = Array1::<f64>::zeros(n);
        let mut neg_bh = Array1::<f64>::zeros(n);
        let mut recon = 0.0;

        // Step 3: clamp the data through the substrate's converter model
        // once, like the batched engine — fed-back samples are exact
        // {0, 1}, on which quantization is the identity. (Gradients still
        // accumulate against the raw data, mirroring the batched path.)
        let clamped = self.substrate.quantize_batch(batch);

        for (v_row, clamped_row) in batch.rows().zip(clamped.rows()) {
            let v_pos = v_row.to_owned();
            // Steps 3–4: positive phase on the substrate.
            let h_pos = self.substrate.sample_hidden_row(&clamped_row, rng);
            self.substrate.counters_mut().positive_samples += 1;

            // Steps 5–6: k-step Gibbs equivalent on the substrate.
            let mut h_neg = h_pos.clone();
            let mut v_neg = v_pos.clone();
            for _ in 0..self.config.k() {
                v_neg = self.substrate.sample_visible_row(&h_neg.view(), rng);
                h_neg = self.substrate.sample_hidden_row(&v_neg.view(), rng);
            }
            self.substrate.counters_mut().negative_samples += 1;

            // Step 7/8 accumulation on the host.
            accumulate_outer(&mut pos_w, &v_pos, &h_pos);
            accumulate_outer(&mut neg_w, &v_neg, &h_neg);
            pos_bv += &v_pos;
            neg_bv += &v_neg;
            pos_bh += &h_pos;
            neg_bh += &h_neg;
            self.substrate.counters_mut().host_mac_ops += 2 * (m * n) as u64;

            recon += (&v_neg - &v_pos).mapv(f64::abs).sum() / m as f64;
        }

        // Step 8: host gradient update.
        let alpha = self.config.learning_rate();
        let grad_w = (&pos_w - &neg_w) / bs;
        let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();
        *self.rbm.weights_mut() += &(&grad_w * alpha);
        *self.rbm.visible_bias_mut() += &(&(&pos_bv - &neg_bv) * (alpha / bs));
        *self.rbm.hidden_bias_mut() += &(&(&pos_bh - &neg_bh) * (alpha / bs));
        self.substrate.counters_mut().host_mac_ops += (m * n + m + n) as u64;

        (recon / bs, grad_norm)
    }
}

fn accumulate_outer(acc: &mut Array2<f64>, v: &Array1<f64>, h: &Array1<f64>) {
    for (i, &vi) in v.iter().enumerate() {
        if vi == 0.0 {
            continue;
        }
        for (j, &hj) in h.iter().enumerate() {
            acc[[i, j]] += vi * hj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_analog::NoiseModel;
    use rand::SeedableRng;

    fn two_mode_data(rows: usize, m: usize) -> Array2<f64> {
        Array2::from_shape_fn((rows, m), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn ideal_gs_improves_likelihood_like_software_cd() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rbm = Rbm::random(8, 4, 0.01, &mut rng);
        let data = two_mode_data(40, 8);
        let before = ember_rbm::exact::mean_log_likelihood(&rbm, &data);
        let mut gs = GibbsSampler::new(rbm, GsConfig::default().with_k(1), &mut rng);
        for _ in 0..60 {
            gs.train_epoch(&data, 10, &mut rng);
        }
        let after = ember_rbm::exact::mean_log_likelihood(gs.rbm(), &data);
        assert!(after > before + 1.0, "LL {before} -> {after}");
    }

    #[test]
    fn noisy_gs_still_learns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rbm = Rbm::random(8, 4, 0.01, &mut rng);
        let data = two_mode_data(40, 8);
        let before = ember_rbm::exact::mean_log_likelihood(&rbm, &data);
        let config = GsConfig::default()
            .with_k(1)
            .with_noise(NoiseModel::new(0.1, 0.1).unwrap());
        let mut gs = GibbsSampler::new(rbm, config, &mut rng);
        for _ in 0..60 {
            gs.train_epoch(&data, 10, &mut rng);
        }
        let after = ember_rbm::exact::mean_log_likelihood(gs.rbm(), &data);
        assert!(after > before + 0.5, "LL {before} -> {after}");
    }

    #[test]
    fn counters_track_operations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rbm = Rbm::random(4, 2, 0.01, &mut rng);
        let mut gs = GibbsSampler::new(rbm, GsConfig::default().with_k(2), &mut rng);
        let data = two_mode_data(10, 4);
        gs.train_epoch(&data, 5, &mut rng);
        let c = gs.counters();
        assert_eq!(c.positive_samples, 10);
        assert_eq!(c.negative_samples, 10);
        // Per sample: 1 positive settle + 2*k settles. 10 samples.
        assert_eq!(c.phase_points, 10 * (1 + 4) * 50);
        assert!(c.host_words_transferred > 0);
        assert!(c.host_mac_ops > 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = two_mode_data(12, 4);
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let rbm = Rbm::random(4, 2, 0.01, &mut rng);
            let mut gs = GibbsSampler::new(rbm, GsConfig::default(), &mut rng);
            gs.train_epoch(&data, 4, &mut rng);
            gs.rbm().clone()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn variation_is_frozen_across_batches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let rbm = Rbm::random(4, 3, 0.01, &mut rng);
        let config = GsConfig::default().with_noise(NoiseModel::new(0.2, 0.0).unwrap());
        let gs = GibbsSampler::new(rbm, config, &mut rng);
        let v1 = gs.substrate().variation().clone();
        // The variation map must not change between programming events.
        let mut gs2 = gs.clone();
        gs2.program();
        assert_eq!(v1.factors(), gs2.substrate().variation().factors());
    }

    #[test]
    fn comparator_offset_flows_through_config() {
        use ember_analog::Comparator;
        // A +0.5 offset lifts the zero-field probability of 0.5 to the
        // full rail: if the configured comparator is really plumbed into
        // the sampler, every read-out is 1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rbm = Rbm::random(4, 3, 0.01, &mut rng);
        let config = GsConfig::default().with_comparator(Comparator::with_offset(0.5).unwrap());
        let gs = GibbsSampler::new(rbm, config, &mut rng);
        let mut sub = gs.into_substrate();
        let v = Array2::zeros((6, 4));
        let h = sub.sample_hidden_batch(&v, &mut rng);
        assert!(h.iter().all(|&x| x == 1.0), "offset comparator ignored");
    }

    #[test]
    fn serial_and_batched_engines_share_substrate_counters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let rbm = Rbm::random(4, 2, 0.01, &mut rng);
        let config = GsConfig::default()
            .with_k(1)
            .with_engine(GsEngine::SerialReference);
        let mut gs = GibbsSampler::new(rbm, config, &mut rng);
        let data = two_mode_data(6, 4);
        gs.train_epoch(&data, 3, &mut rng);
        let c = gs.counters();
        assert_eq!(c.positive_samples, 6);
        // 1 positive + 2 negative settles per sample at k=1.
        assert_eq!(c.phase_points, 6 * 3 * 50);
    }
}
