use ndarray::{Array1, Array2, Axis};
use rand::Rng;

use ember_analog::{Comparator, Dtc, VariationMap};
use ember_rbm::{EpochStats, Rbm};

use crate::config::GsEngine;
use crate::{AnalogSampler, GsConfig, HardwareCounters};

/// The Gibbs-sampler accelerator of §3.2: the Ising substrate performs the
/// conditional sampling of Algorithm 1; the host keeps the master weights
/// and applies the updates.
///
/// Operation per minibatch (§3.2 operation list):
/// 1. the host programs the coupling matrix and biases (host→substrate
///    transfer of `m·n + m + n` words);
/// 2. for every sample, the visible units are clamped through DTCs, the
///    hidden units settle and are read out (`h⁺`);
/// 3. the equivalent of `k`-step Gibbs sampling runs by alternately
///    clamping sides and letting the substrate produce samples;
/// 4. the host accumulates `⟨v⁺ᵀh⁺⟩ − ⟨v⁻ᵀh⁻⟩` and updates the weights.
///
/// All sampling flows through the analog node path ([`AnalogSampler`]),
/// including static coupler variation frozen at construction.
///
/// # Example
///
/// ```
/// use ember_core::{GibbsSampler, GsConfig};
/// use ember_rbm::Rbm;
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let rbm = Rbm::random(6, 3, 0.01, &mut rng);
/// let mut gs = GibbsSampler::new(rbm, GsConfig::default(), &mut rng);
/// let data = Array2::from_shape_fn((20, 6), |(i, _)| (i % 2) as f64);
/// let stats = gs.train_epoch(&data, 10, &mut rng);
/// assert_eq!(stats.batches, 2);
/// assert!(gs.counters().positive_samples >= 20);
/// ```
#[derive(Debug, Clone)]
pub struct GibbsSampler {
    rbm: Rbm,
    config: GsConfig,
    sampler: AnalogSampler,
    dtc: Dtc,
    variation: VariationMap,
    programmed_weights: Array2<f64>,
    counters: HardwareCounters,
}

impl GibbsSampler {
    /// Builds the accelerator around an initial host-side RBM. Static
    /// coupler variation is sampled once here ("fabrication").
    pub fn new<R: Rng + ?Sized>(rbm: Rbm, config: GsConfig, rng: &mut R) -> Self {
        let variation = config
            .noise()
            .sample_variation((rbm.visible_len(), rbm.hidden_len()), rng);
        let sampler = AnalogSampler::new(config.sigmoid(), Comparator::ideal(), config.noise());
        let dtc = Dtc::new(config.dtc_bits(), 0.0).expect("validated bits");
        let mut gs = GibbsSampler {
            programmed_weights: Array2::zeros(rbm.weights().dim()),
            rbm,
            config,
            sampler,
            dtc,
            variation,
            counters: HardwareCounters::new(),
        };
        gs.program();
        gs
    }

    /// The host-side master RBM (the weights the host believes it has).
    pub fn rbm(&self) -> &Rbm {
        &self.rbm
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &GsConfig {
        &self.config
    }

    /// Cumulative hardware event counters.
    pub fn counters(&self) -> &HardwareCounters {
        &self.counters
    }

    /// Programs the host weights onto the coupling array (§3.2 step 2).
    /// The physical array realizes `W ⊙ variation`.
    fn program(&mut self) {
        self.programmed_weights = self.variation.apply(self.rbm.weights());
        let (m, n) = self.rbm.weights().dim();
        self.counters.host_words_transferred += (m * n + m + n) as u64;
    }

    /// Substrate-assisted hidden sample: counted row-at-a-time variant
    /// used by the serial reference engine (seed-style scalar kernels).
    fn substrate_sample_hidden<R: Rng + ?Sized>(
        &mut self,
        v: &Array1<f64>,
        rng: &mut R,
    ) -> Array1<f64> {
        let clamped = v.mapv(|x| self.dtc.convert(x));
        let h = self.sampler.sample_layer_reference(
            &self.programmed_weights.view(),
            &self.rbm.hidden_bias().view(),
            &clamped.view(),
            false,
            rng,
        );
        self.counters.phase_points += self.config.settle_phase_points();
        self.counters.host_words_transferred += h.len() as u64;
        h
    }

    /// Substrate-assisted visible sample (hidden side clamped), counted.
    fn substrate_sample_visible<R: Rng + ?Sized>(
        &mut self,
        h: &Array1<f64>,
        rng: &mut R,
    ) -> Array1<f64> {
        let v = self.sampler.sample_layer_reference(
            &self.programmed_weights.view(),
            &self.rbm.visible_bias().view(),
            &h.view(),
            true,
            rng,
        );
        self.counters.phase_points += self.config.settle_phase_points();
        self.counters.host_words_transferred += v.len() as u64;
        v
    }

    /// One epoch of substrate-accelerated CD-k (Algorithm 1 with steps
    /// 9–15 offloaded). Returns epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM or `batch_size == 0`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        data: &Array2<f64>,
        batch_size: usize,
        rng: &mut R,
    ) -> EpochStats {
        assert_eq!(data.ncols(), self.rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut stats = Vec::new();
        let rows = data.nrows();
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            stats.push(self.train_batch(&batch, rng));
            start = end;
        }
        let collected: Vec<(f64, f64)> = stats;
        EpochStats::accumulate(&collected)
    }

    fn train_batch<R: Rng + ?Sized>(&mut self, batch: &Array2<f64>, rng: &mut R) -> (f64, f64) {
        match self.config.engine() {
            GsEngine::Batched => self.train_batch_batched(batch, rng),
            GsEngine::SerialReference => self.train_batch_serial(batch, rng),
        }
    }

    /// The batched engine: the whole minibatch of substrate chains runs
    /// at once — every conditional-sampling step is a single GEMM over
    /// the `batch × layer` matrix (see
    /// [`AnalogSampler::sample_layer_batch`]) instead of one GEMV per
    /// row, and the gradient accumulates through two GEMMs (`v⁺ᵀh⁺`,
    /// `v⁻ᵀh⁻`) instead of `batch` element-wise outer products. With the
    /// vendored ndarray's `rayon` feature the GEMMs additionally fan
    /// output-row blocks across the thread pool; results are
    /// bit-identical at every thread count.
    fn train_batch_batched<R: Rng + ?Sized>(
        &mut self,
        batch: &Array2<f64>,
        rng: &mut R,
    ) -> (f64, f64) {
        let (m, n) = self.rbm.weights().dim();
        let rows = batch.nrows();
        let bs = rows as f64;
        let k = self.config.k();
        // Step 2: (re)program the current weights.
        self.program();

        // Steps 3–4: positive phase, whole minibatch at once. Only the
        // data needs DTC quantization — the comparator read-outs fed back
        // below are already exactly {0, 1}, on which the DTC is the
        // identity for any resolution.
        let clamped = batch.mapv(|x| self.dtc.convert(x));
        let h_pos = self.sampler.sample_layer_batch(
            &self.programmed_weights.view(),
            &self.rbm.hidden_bias().view(),
            &clamped,
            rng,
        );
        // Steps 5–6: k-step Gibbs equivalent on the substrate, batched.
        let mut h_neg = h_pos.clone();
        let mut v_neg = batch.clone();
        for _ in 0..k {
            v_neg = self.sampler.sample_layer_rev_batch(
                &self.programmed_weights.view(),
                &self.rbm.visible_bias().view(),
                &h_neg,
                rng,
            );
            h_neg = self.sampler.sample_layer_batch(
                &self.programmed_weights.view(),
                &self.rbm.hidden_bias().view(),
                &v_neg,
                rng,
            );
        }

        // Hardware event bookkeeping, identical totals to the serial path.
        let settles = rows as u64 * (1 + 2 * k as u64);
        self.counters.positive_samples += rows as u64;
        self.counters.negative_samples += rows as u64;
        self.counters.phase_points += settles * self.config.settle_phase_points();
        self.counters.host_words_transferred +=
            rows as u64 * ((1 + k as u64) * n as u64 + k as u64 * m as u64);
        self.counters.host_mac_ops += rows as u64 * 2 * (m * n) as u64;

        // Step 7/8: batched GEMM accumulation + host gradient update
        // (mirrors the software trainer's formulation).
        let alpha = self.config.learning_rate();
        let grad_w = (batch.t().dot(&h_pos) - v_neg.t().dot(&h_neg)) / bs;
        let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();
        let grad_bv = (batch.sum_axis(Axis(0)) - v_neg.sum_axis(Axis(0))) / bs;
        let grad_bh = (h_pos.sum_axis(Axis(0)) - h_neg.sum_axis(Axis(0))) / bs;
        *self.rbm.weights_mut() += &(&grad_w * alpha);
        *self.rbm.visible_bias_mut() += &(&grad_bv * (alpha));
        *self.rbm.hidden_bias_mut() += &(&grad_bh * (alpha));
        self.counters.host_mac_ops += (m * n + m + n) as u64;

        let recon = (&v_neg - batch).mapv(f64::abs).mean().unwrap_or(0.0);
        (recon, grad_norm)
    }

    /// The original row-at-a-time scalar engine (kept as the measured
    /// baseline; see [`GsEngine::SerialReference`]).
    fn train_batch_serial<R: Rng + ?Sized>(
        &mut self,
        batch: &Array2<f64>,
        rng: &mut R,
    ) -> (f64, f64) {
        let (m, n) = self.rbm.weights().dim();
        let bs = batch.nrows() as f64;
        // Step 2: (re)program the current weights.
        self.program();

        let mut pos_w = Array2::<f64>::zeros((m, n));
        let mut neg_w = Array2::<f64>::zeros((m, n));
        let mut pos_bv = Array1::<f64>::zeros(m);
        let mut neg_bv = Array1::<f64>::zeros(m);
        let mut pos_bh = Array1::<f64>::zeros(n);
        let mut neg_bh = Array1::<f64>::zeros(n);
        let mut recon = 0.0;

        for v_row in batch.rows() {
            let v_pos = v_row.to_owned();
            // Steps 3–4: positive phase on the substrate.
            let h_pos = self.substrate_sample_hidden(&v_pos, rng);
            self.counters.positive_samples += 1;

            // Steps 5–6: k-step Gibbs equivalent on the substrate.
            let mut h_neg = h_pos.clone();
            let mut v_neg = v_pos.clone();
            for _ in 0..self.config.k() {
                v_neg = self.substrate_sample_visible(&h_neg, rng);
                h_neg = self.substrate_sample_hidden(&v_neg, rng);
            }
            self.counters.negative_samples += 1;

            // Step 7/8 accumulation on the host.
            accumulate_outer(&mut pos_w, &v_pos, &h_pos);
            accumulate_outer(&mut neg_w, &v_neg, &h_neg);
            pos_bv += &v_pos;
            neg_bv += &v_neg;
            pos_bh += &h_pos;
            neg_bh += &h_neg;
            self.counters.host_mac_ops += 2 * (m * n) as u64;

            recon += (&v_neg - &v_pos).mapv(f64::abs).sum() / m as f64;
        }

        // Step 8: host gradient update.
        let alpha = self.config.learning_rate();
        let grad_w = (&pos_w - &neg_w) / bs;
        let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();
        *self.rbm.weights_mut() += &(&grad_w * alpha);
        *self.rbm.visible_bias_mut() += &(&(&pos_bv - &neg_bv) * (alpha / bs));
        *self.rbm.hidden_bias_mut() += &(&(&pos_bh - &neg_bh) * (alpha / bs));
        self.counters.host_mac_ops += (m * n + m + n) as u64;

        (recon / bs, grad_norm)
    }
}

fn accumulate_outer(acc: &mut Array2<f64>, v: &Array1<f64>, h: &Array1<f64>) {
    for (i, &vi) in v.iter().enumerate() {
        if vi == 0.0 {
            continue;
        }
        for (j, &hj) in h.iter().enumerate() {
            acc[[i, j]] += vi * hj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_analog::NoiseModel;
    use rand::SeedableRng;

    fn two_mode_data(rows: usize, m: usize) -> Array2<f64> {
        Array2::from_shape_fn((rows, m), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn ideal_gs_improves_likelihood_like_software_cd() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rbm = Rbm::random(8, 4, 0.01, &mut rng);
        let data = two_mode_data(40, 8);
        let before = ember_rbm::exact::mean_log_likelihood(&rbm, &data);
        let mut gs = GibbsSampler::new(rbm, GsConfig::default().with_k(1), &mut rng);
        for _ in 0..60 {
            gs.train_epoch(&data, 10, &mut rng);
        }
        let after = ember_rbm::exact::mean_log_likelihood(gs.rbm(), &data);
        assert!(after > before + 1.0, "LL {before} -> {after}");
    }

    #[test]
    fn noisy_gs_still_learns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rbm = Rbm::random(8, 4, 0.01, &mut rng);
        let data = two_mode_data(40, 8);
        let before = ember_rbm::exact::mean_log_likelihood(&rbm, &data);
        let config = GsConfig::default()
            .with_k(1)
            .with_noise(NoiseModel::new(0.1, 0.1).unwrap());
        let mut gs = GibbsSampler::new(rbm, config, &mut rng);
        for _ in 0..60 {
            gs.train_epoch(&data, 10, &mut rng);
        }
        let after = ember_rbm::exact::mean_log_likelihood(gs.rbm(), &data);
        assert!(after > before + 0.5, "LL {before} -> {after}");
    }

    #[test]
    fn counters_track_operations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rbm = Rbm::random(4, 2, 0.01, &mut rng);
        let mut gs = GibbsSampler::new(rbm, GsConfig::default().with_k(2), &mut rng);
        let data = two_mode_data(10, 4);
        gs.train_epoch(&data, 5, &mut rng);
        let c = gs.counters();
        assert_eq!(c.positive_samples, 10);
        assert_eq!(c.negative_samples, 10);
        // Per sample: 1 positive settle + 2*k settles. 10 samples.
        assert_eq!(c.phase_points, 10 * (1 + 4) * 50);
        assert!(c.host_words_transferred > 0);
        assert!(c.host_mac_ops > 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = two_mode_data(12, 4);
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let rbm = Rbm::random(4, 2, 0.01, &mut rng);
            let mut gs = GibbsSampler::new(rbm, GsConfig::default(), &mut rng);
            gs.train_epoch(&data, 4, &mut rng);
            gs.rbm().clone()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn variation_is_frozen_across_batches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let rbm = Rbm::random(4, 3, 0.01, &mut rng);
        let config = GsConfig::default().with_noise(NoiseModel::new(0.2, 0.0).unwrap());
        let gs = GibbsSampler::new(rbm, config, &mut rng);
        let v1 = gs.variation.clone();
        // The variation map must not change between programming events.
        let mut gs2 = gs.clone();
        gs2.program();
        assert_eq!(v1.factors(), gs2.variation.factors());
    }
}
