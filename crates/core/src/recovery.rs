//! Detection and recovery policy for substrate faults.
//!
//! The analog substrate's weights are *volatile* — gate charges that are
//! re-programmed every minibatch (§3.2) — so the recovery discipline for
//! any [`SubstrateFault`] is always **reprogram, then retry**: whatever
//! upset broke the read may also have disturbed the couplings, and
//! reprogramming costs only one host→substrate transfer (already the
//! per-minibatch steady state).
//!
//! This module supplies the policy half of that discipline:
//!
//! * [`RetryPolicy`] — bounded retries with exponential backoff and
//!   deterministic jitter drawn from the caller's RNG lane (the same
//!   `RngStreams` family that seeds the sampling chains), so a retry
//!   schedule replays exactly under a fixed master seed.
//! * [`screen_samples`] — the host-side sanity screen over a sampled
//!   batch: binary substrates contractually return hard `{0, 1}`
//!   read-outs, so any non-finite or non-binary cell is evidence of a
//!   corrupted read (comparator latched mid-rail) and is converted into
//!   a typed [`SubstrateFault::CorruptSamples`].
//! * [`couplings_checksum`] — the host-side digest of an intended
//!   programming image, compared against
//!   [`Substrate::programmed_checksum`] readback (when the backend
//!   offers one) to catch stuck-at weight bits that a "successful"
//!   transfer silently realized.
//!
//! [`Substrate::programmed_checksum`]: ember_substrate::Substrate::programmed_checksum

use std::time::Duration;

use ndarray::{Array2, ArrayView1, ArrayView2};
use rand::{Rng, RngCore};

use ember_substrate::SubstrateFault;

/// Bounded exponential-backoff retry schedule for substrate faults.
///
/// `backoff(attempt, rng)` yields the pause before retry `attempt`
/// (1-indexed): `base_backoff × multiplier^(attempt−1)`, capped at
/// `max_backoff`, then scaled by a jitter factor drawn uniformly from
/// `[0.5, 1.0)` off the supplied RNG. Callers pass a lane of the
/// request's `RngStreams` family, which makes the whole fault-recovery
/// timeline — like the samples themselves — a pure function of the
/// master seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries attempted after the initial try before giving up
    /// (`0` disables recovery).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Growth factor between consecutive backoffs.
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three retries at 500 µs/1 ms/2 ms (pre-jitter) — generous
    /// against transient upsets yet bounded well under a typical
    /// request deadline.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(500),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first fault is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Replaces the retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Replaces the backoff curve (`base × multiplier^k`, capped at
    /// `max`).
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, multiplier: f64, max: Duration) -> Self {
        self.base_backoff = base;
        self.multiplier = multiplier;
        self.max_backoff = max;
        self
    }

    /// The jittered pause before retry `attempt` (1-indexed).
    ///
    /// Deterministic given the RNG state: jitter scales the capped
    /// exponential delay by a uniform draw from `[0.5, 1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is `0` — attempt numbering starts at the
    /// first *retry*.
    pub fn backoff(&self, attempt: u32, rng: &mut dyn RngCore) -> Duration {
        assert!(attempt >= 1, "backoff is for retries; attempts start at 1");
        let exp = self.multiplier.powi(attempt as i32 - 1);
        let raw = self.base_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        let jitter = 0.5 + 0.5 * rng.random::<f64>();
        Duration::from_secs_f64(capped * jitter)
    }
}

/// Host-side sanity screen over a sampled batch: every cell must be a
/// hard binary `0.0` or `1.0`.
///
/// The substrates' read-out contract is comparator-latched binary
/// states; a NaN, infinity, or mid-rail value can only come from a
/// corrupted read. Returns the offending coordinate in the fault
/// message so logs localize the bad comparator column.
pub fn screen_samples(batch: &Array2<f64>) -> Result<(), SubstrateFault> {
    let (_, cols) = batch.dim();
    for (flat, &x) in batch.iter().enumerate() {
        if !(x == 0.0 || x == 1.0) {
            let (i, j) = (flat / cols.max(1), flat % cols.max(1));
            return Err(SubstrateFault::CorruptSamples(format!(
                "non-binary cell {x:?} at ({i}, {j})"
            )));
        }
    }
    Ok(())
}

/// FNV-1a digest over the bit patterns of a programming image
/// (`weights`, then `visible_bias`, then `hidden_bias`, row-major).
///
/// This is the host side of readback verification: program the
/// substrate, then compare this digest of the *intended* image against
/// [`ember_substrate::Substrate::programmed_checksum`] (the digest of
/// the *realized* couplings, on backends that can read them back). A
/// mismatch is a [`SubstrateFault::Readback`].
pub fn couplings_checksum(
    weights: &ArrayView2<'_, f64>,
    visible_bias: &ArrayView1<'_, f64>,
    hidden_bias: &ArrayView1<'_, f64>,
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: f64| {
        for byte in x.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    weights.iter().copied().for_each(&mut eat);
    visible_bias.iter().copied().for_each(&mut eat);
    hidden_bias.iter().copied().for_each(&mut eat);
    hash
}

/// Verifies a programming against the substrate's readback, when the
/// backend offers one.
///
/// Backends without readback (`programmed_checksum() == None` — all
/// the real models, which would have to pay an ADC sweep) verify
/// vacuously: the screen costs nothing on the hot path. Backends with
/// readback (the chaos wrapper, future calibration harnesses) get
/// stuck-at corruption converted into a typed
/// [`SubstrateFault::Readback`].
pub fn verify_programming<S: ember_substrate::Substrate + ?Sized>(
    substrate: &S,
    weights: &ArrayView2<'_, f64>,
    visible_bias: &ArrayView1<'_, f64>,
    hidden_bias: &ArrayView1<'_, f64>,
) -> Result<(), SubstrateFault> {
    let Some(actual) = substrate.programmed_checksum() else {
        return Ok(());
    };
    let expected = couplings_checksum(weights, visible_bias, hidden_bias);
    if expected == actual {
        Ok(())
    } else {
        Err(SubstrateFault::Readback { expected, actual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::{arr1, arr2, Array1};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::default().with_backoff(
            Duration::from_millis(1),
            2.0,
            Duration::from_millis(3),
        );
        // Jitter is in [0.5, 1.0): bound each attempt from both sides.
        let mut rng = StdRng::seed_from_u64(0);
        let b1 = policy.backoff(1, &mut rng);
        let b2 = policy.backoff(2, &mut rng);
        let b3 = policy.backoff(3, &mut rng);
        assert!(b1 >= Duration::from_micros(500) && b1 < Duration::from_millis(1));
        assert!(b2 >= Duration::from_millis(1) && b2 < Duration::from_millis(2));
        // 4 ms raw is capped at 3 ms before jitter.
        assert!(b3 >= Duration::from_micros(1500) && b3 < Duration::from_millis(3));
    }

    #[test]
    fn backoff_is_deterministic_per_rng_seed() {
        let policy = RetryPolicy::default();
        let schedule = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (1..=3)
                .map(|a| policy.backoff(a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
    }

    #[test]
    #[should_panic(expected = "attempts start at 1")]
    fn backoff_rejects_attempt_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RetryPolicy::default().backoff(0, &mut rng);
    }

    #[test]
    fn screen_accepts_binary_and_localizes_corruption() {
        assert!(screen_samples(&arr2(&[[0.0, 1.0], [1.0, 0.0]])).is_ok());
        let err = screen_samples(&arr2(&[[0.0, 1.0], [0.5, 0.0]])).unwrap_err();
        assert!(matches!(err, SubstrateFault::CorruptSamples(_)));
        assert!(err.to_string().contains("(1, 0)"));
        let nan = screen_samples(&arr2(&[[f64::NAN]])).unwrap_err();
        assert!(matches!(nan, SubstrateFault::CorruptSamples(_)));
    }

    #[test]
    fn checksum_distinguishes_images_and_matches_chaos_readback() {
        let w = arr2(&[[0.1, 0.2], [0.3, 0.4]]);
        let bv = arr1(&[0.0, 0.0]);
        let bh = arr1(&[0.5, -0.5]);
        let a = couplings_checksum(&w.view(), &bv.view(), &bh.view());
        let mut w2 = w.clone();
        w2[[1, 1]] = 0.0;
        let b = couplings_checksum(&w2.view(), &bv.view(), &bh.view());
        assert_ne!(a, b);
        // Same image, same digest — and the ChaosSubstrate readback
        // (its own FNV-1a copy) agrees, closing the verification loop.
        assert_eq!(a, couplings_checksum(&w.view(), &bv.view(), &bh.view()));
        let inner: Box<dyn ember_substrate::ReplicableSubstrate> =
            crate::substrate::SubstrateSpec::software(crate::GsConfig::default()).fabricate(
                2,
                2,
                &mut StdRng::seed_from_u64(0),
            );
        let mut chaotic =
            ember_substrate::ChaosSubstrate::new(inner, ember_substrate::ChaosConfig::new(1));
        ember_substrate::Substrate::program(&mut chaotic, &w.view(), &bv.view(), &bh.view());
        assert_eq!(
            ember_substrate::Substrate::programmed_checksum(&chaotic),
            Some(a)
        );
        assert!(verify_programming(&chaotic, &w.view(), &bv.view(), &bh.view()).is_ok());
        // Readback of a *different* intended image is a typed fault.
        let err = verify_programming(&chaotic, &w2.view(), &bv.view(), &bh.view()).unwrap_err();
        assert!(matches!(err, SubstrateFault::Readback { .. }));
    }

    #[test]
    fn verification_is_vacuous_without_readback() {
        let plain = crate::substrate::SoftwareGibbs::new(
            2,
            2,
            &crate::GsConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        let w = Array2::zeros((2, 2));
        let b = Array1::zeros(2);
        assert_eq!(
            ember_substrate::Substrate::programmed_checksum(&plain),
            None
        );
        assert!(verify_programming(&plain, &w.view(), &b.view(), &b.view()).is_ok());
    }
}
