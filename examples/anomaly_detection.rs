//! Credit-card-fraud anomaly detection with a 28-10 RBM (the paper's
//! anomaly benchmark): train on legitimate transactions only, score every
//! transaction by free energy, report ROC AUC.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```

use ember::core::{BgfConfig, BoltzmannGradientFollower};
use ember::datasets::fraud;
use ember::metrics::RocCurve;
use ember::rbm::{CdTrainer, Rbm};
use ndarray::Axis;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn auc(rbm: &Rbm, ds: &fraud::FraudDataset) -> RocCurve {
    let scores: Vec<f64> = ds
        .binary()
        .axis_iter(Axis(0))
        .map(|row| rbm.free_energy(&row))
        .collect();
    RocCurve::new(&scores, ds.labels())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let ds = fraud::generate(8000, 0.02, 77);
    println!(
        "fraud-like: {} transactions, {} fraudulent ({:.1}%)",
        ds.len(),
        ds.positives(),
        100.0 * ds.positives() as f64 / ds.len() as f64
    );
    let normals = ds.normal_binary();

    let mut cd = Rbm::random(28, 10, 0.01, &mut rng);
    CdTrainer::new(10, 0.05).train(&mut cd, &normals, 32, 15, &mut rng);
    let roc_cd = auc(&cd, &ds);
    println!("CD-10 RBM AUC : {:.3}  (paper: 0.96)", roc_cd.auc());

    let init = Rbm::random(28, 10, 0.01, &mut rng);
    let mut bgf = BoltzmannGradientFollower::new(
        init,
        BgfConfig::default()
            .with_pump_ratio(1.0 / 1024.0)
            .with_negative_sweeps(3),
        &mut rng,
    );
    for _ in 0..15 {
        bgf.train_epoch(&normals, &mut rng);
    }
    let roc_bgf = auc(&bgf.effective_rbm(), &ds);
    println!("BGF RBM AUC   : {:.3}  (paper: 0.96)", roc_bgf.auc());

    println!("\nROC (BGF), every ~20th point:");
    for (fpr, tpr) in roc_bgf.points().iter().step_by(20) {
        println!("  fpr {fpr:.3}  tpr {tpr:.3}");
    }
}
