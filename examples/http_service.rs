//! The network edge end to end: an [`ember::http::Server`] on a
//! loopback port serving a sharded [`SamplingService`], driven by a mix
//! of binary-wire and JSON clients from multiple threads.
//!
//! The tour hits every part of the issue's contract:
//!
//! * mixed-encoding traffic — the same seeded request over the
//!   bit-packed wire (`application/x-ember-bits`) and the JSON fallback
//!   returns byte-for-byte the same sampled bits, and the binary body
//!   is ~80× smaller at MNIST width;
//! * backpressure — a deliberately tiny queue under concurrent flood
//!   surfaces `429 queue_full` with a `Retry-After` hint, and honoring
//!   the hint gets the retried request served;
//! * training over HTTP publishes a new model version that later
//!   sample requests observe;
//! * `GET /v1/stats` dumps the service's typed accounting snapshot;
//! * shutdown drains in-flight HTTP requests before the service's own
//!   bounded drain runs.
//!
//! ```sh
//! cargo run --release --example http_service
//! ```

use std::time::Duration;

use ember::core::{GsConfig, SubstrateSpec};
use ember::http::{Client, ClientError, SampleOptions, Server};
use ember::rbm::Rbm;
use ember::serve::SamplingService;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // An MNIST-shaped model behind a 2-shard service with a small queue
    // (2048 rows is ample for phases 1-3; phase 4 rebuilds with a tiny
    // queue to force backpressure).
    let digits = Rbm::random(784, 32, 0.2, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&digits, &mut rng);

    let service = SamplingService::builder().shards(2).build();
    service
        .register_model("digits", digits.clone(), proto.clone_boxed())
        .unwrap();

    let server = Server::start("127.0.0.1:0", service).unwrap();
    let addr = server.addr();
    println!("== edge listening on {addr} ==");
    let client = Client::new(addr);

    let health = client.health().unwrap();
    println!(
        "  /healthz           {} ({} shards)",
        health.status, health.shards
    );
    for model in client.models().unwrap().models {
        println!(
            "  /v1/models         {} v{} ({}x{})",
            model.name, model.version, model.visible, model.hidden
        );
    }

    println!("\n== phase 1: mixed binary + JSON clients, same seed ==");
    // Four client threads — two speaking the binary wire, two JSON —
    // all asking for the same seeded request. Every response must carry
    // identical bits regardless of encoding, thread, or shard.
    let options = SampleOptions::new().samples(8).gibbs_steps(3).seed(0xBEEF);
    let mut handles = Vec::new();
    for worker in 0..4usize {
        let client = client.clone();
        let options = options.clone();
        handles.push(std::thread::spawn(move || {
            if worker % 2 == 0 {
                let reply = client.sample_binary("digits", &options).unwrap();
                (
                    format!("binary ({} B body)", reply.body_bytes),
                    reply.to_dense(),
                )
            } else {
                let reply = client.sample_json("digits", &options).unwrap();
                let rows = reply.reply.samples.len();
                let dense = ndarray::Array2::from_shape_vec(
                    (rows, 784),
                    reply.reply.samples.iter().flatten().copied().collect(),
                )
                .unwrap();
                (format!("json   ({} B body)", reply.body_bytes), dense)
            }
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (encoding, _) in &results {
        println!("  worker answered via {encoding}");
    }
    let reference = &results[0].1;
    assert!(
        results.iter().all(|(_, dense)| dense == reference),
        "same seed must mean same bits on every encoding"
    );
    println!("  all 4 responses bit-identical across encodings");

    println!("\n== phase 2: wire economics at 784 visible units ==");
    let binary = client.sample_binary("digits", &options).unwrap();
    let json = client.sample_json("digits", &options).unwrap();
    let ratio = json.body_bytes as f64 / binary.body_bytes as f64;
    println!(
        "  binary body {:>8} B   ({} B/row incl. header)",
        binary.body_bytes,
        binary.body_bytes / 8
    );
    println!("  json body   {:>8} B", json.body_bytes);
    println!("  ratio       {ratio:>7.1}x  (issue bar: >= 50x)");
    assert!(ratio >= 50.0);

    println!("\n== phase 3: training over HTTP publishes a new version ==");
    let mut data_rng = StdRng::seed_from_u64(7);
    let data = ndarray::Array2::from_shape_fn((32, 784), |_| {
        f64::from(rand::Rng::random_bool(&mut data_rng, 0.3))
    });
    let reply = client.train("digits", &data, 1, 99).unwrap();
    println!(
        "  trained on shard {}: v{} ({} batches, recon err {:.4})",
        reply.shard, reply.new_version, reply.batches, reply.reconstruction_error
    );
    let post = client
        .sample_binary("digits", &SampleOptions::new().seed(1))
        .unwrap();
    assert_eq!(post.model_version(), reply.new_version);
    println!("  follow-up sample served from v{}", post.model_version());

    println!("\n== phase 4: backpressure — 429 + honored Retry-After ==");
    // A fresh edge over a 1-shard service with a 2-row queue: pin the
    // shard with a slow request, then flood it from 8 threads.
    let tiny = SamplingService::builder().shards(1).queue_rows(2).build();
    tiny.register_model("digits", digits, proto).unwrap();
    let tiny_server = Server::start_with_workers("127.0.0.1:0", tiny, 16).unwrap();
    let tiny_client = Client::new(tiny_server.addr());

    let pin_client = tiny_client.clone();
    let pin = std::thread::spawn(move || {
        pin_client.sample_binary("digits", &SampleOptions::new().gibbs_steps(100).seed(0))
    });
    std::thread::sleep(Duration::from_millis(50));
    let floods: Vec<_> = (0..8u64)
        .map(|i| {
            let c = tiny_client.clone();
            std::thread::spawn(move || {
                c.sample_binary("digits", &SampleOptions::new().gibbs_steps(100).seed(1 + i))
            })
        })
        .collect();
    let mut rejection = None;
    let mut served = 0usize;
    for flood in floods {
        match flood.join().unwrap() {
            Ok(_) => served += 1,
            Err(e @ ClientError::Http { status: 429, .. }) => rejection = Some(e),
            Err(other) => panic!("unexpected error under flood: {other}"),
        }
    }
    let rejection = rejection.expect("a 2-row queue under flood must reject");
    let hint = rejection.retry_after().expect("429 carries Retry-After");
    println!("  flood: {served} served, rest rejected: {rejection}");
    println!("  retry hint: {hint:?} — honoring it");
    std::thread::sleep(hint);
    for attempt in 1.. {
        match tiny_client.sample_binary("digits", &SampleOptions::new().gibbs_steps(1).seed(99)) {
            Ok(_) => {
                println!("  retried request served on attempt {attempt}");
                break;
            }
            Err(ClientError::Http { status: 429, .. }) => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(other) => panic!("unexpected retry error: {other}"),
        }
    }
    pin.join().unwrap().unwrap();
    tiny_server.shutdown(Duration::from_secs(30));

    println!("\n== phase 5: /v1/stats dump ==");
    let stats = client.stats().unwrap();
    println!(
        "  {} shards, {} rows sampled, {} rejected, {} shed",
        stats.shards.len(),
        stats.total_rows(),
        stats.rejected,
        stats.total_shed_requests()
    );
    for (name, model) in &stats.models {
        println!(
            "  {name:<10} sample reqs {:>3}  train reqs {:>2}  rows {:>3}",
            model.sample_requests, model.train_requests, model.rows
        );
    }
    // Accepted-request latency quantiles, merged across shards — the
    // same histograms `GET /v1/stats` serves to any client.
    println!("  latency    {}", stats.latency());

    println!("\n== phase 6: drained shutdown ==");
    // Leave a slow request in flight, then shut down: the connection
    // must drain (real answer, not a slammed socket) before the
    // service's own bounded drain runs.
    let slow_client = client.clone();
    let slow = std::thread::spawn(move || {
        slow_client.sample_binary("digits", &SampleOptions::new().gibbs_steps(50).seed(5))
    });
    std::thread::sleep(Duration::from_millis(30));
    let report = server.shutdown(Duration::from_secs(30));
    println!(
        "  connections drained: {}  service drained: {} (aborted {})",
        report.connections_drained, report.service.drained, report.service.aborted_requests
    );
    assert!(report.connections_drained && report.service.drained);
    let answer = slow.join().unwrap().expect("in-flight request drains");
    println!(
        "  in-flight request answered with {} rows during drain",
        answer.samples.header.rows
    );
    assert!(
        std::net::TcpStream::connect(addr).is_err(),
        "the edge must be gone after shutdown"
    );
    println!("  edge closed");
}
