//! Quickstart: train the same tiny RBM three ways — software CD-1, the
//! Gibbs-sampler accelerator, and the Boltzmann gradient follower — and
//! compare exact log-likelihoods.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ember::core::{BgfConfig, BoltzmannGradientFollower, GibbsSampler, GsConfig};
use ember::rbm::{exact, CdTrainer, Rbm};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // A 12-pixel "two-stripes" world: half the samples light the left
    // stripe, half the right — a two-mode distribution a tiny RBM can nail.
    let data = Array2::from_shape_fn((80, 12), |(i, j)| {
        let left = i % 2 == 0;
        if (left && j < 6) || (!left && j >= 6) {
            1.0
        } else {
            0.0
        }
    });

    let init = Rbm::random(12, 4, 0.01, &mut rng);
    let baseline = exact::mean_log_likelihood(&init, &data);
    println!("initial model     : avg log P(data) = {baseline:8.3}");

    // 1. Software CD-1 (Algorithm 1).
    let mut cd = init.clone();
    CdTrainer::new(1, 0.1).train(&mut cd, &data, 10, 60, &mut rng);
    println!(
        "software CD-1     : avg log P(data) = {:8.3}",
        exact::mean_log_likelihood(&cd, &data)
    );

    // 2. Gibbs-sampler accelerator (substrate samples, host updates).
    let mut gs = GibbsSampler::new(init.clone(), GsConfig::default().with_k(1), &mut rng);
    for _ in 0..60 {
        gs.train_epoch(&data, 10, &mut rng);
    }
    println!(
        "GS accelerator    : avg log P(data) = {:8.3}   (substrate phase points: {})",
        exact::mean_log_likelihood(gs.rbm(), &data),
        gs.counters().phase_points
    );

    // 3. Boltzmann gradient follower (training entirely in-substrate).
    let mut bgf = BoltzmannGradientFollower::new(
        init,
        BgfConfig::default().with_pump_ratio(1.0 / 512.0),
        &mut rng,
    );
    for _ in 0..60 {
        bgf.train_epoch(&data, &mut rng);
    }
    let read = bgf.read_out(&mut rng);
    println!(
        "BGF (in-hardware) : avg log P(data) = {:8.3}   (weight updates: {}, host MACs: {})",
        exact::mean_log_likelihood(&bgf.effective_rbm(), &data),
        bgf.counters().weight_update_events,
        bgf.counters().host_mac_ops
    );
    println!(
        "BGF via 8-bit ADC : avg log P(data) = {:8.3}",
        exact::mean_log_likelihood(&read, &data)
    );

    println!("\nAll three trainers should land well above the initial model;");
    println!("the BGF does it without a single host multiply-accumulate.");
}
