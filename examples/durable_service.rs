//! The durable model lifecycle, end to end: serve → publish → snapshot
//! → **crash mid-write** → warm-start from the last good snapshot →
//! prove the restored fleet samples **bit-identical** → roll back to an
//! earlier version over the HTTP admin surface.
//!
//! The paper's substrate holds its couplings in *volatile* analog state
//! (§3.2: weights are reprogrammed every minibatch), so the durable
//! source of truth is the model registry — and this example is the
//! crash drill for it. A seeded [`ChaosDir`](ember::store::ChaosDir)
//! tears a snapshot mid-write exactly the way a lying fsync would, and
//! the store's checksummed format steps over the wreckage with a typed
//! error instead of serving garbage.
//!
//! ```sh
//! cargo run --release --example durable_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use ember::core::{GsConfig, RetryPolicy, SubstrateSpec};
use ember::http::{Client, SampleOptions, Server, ServerConfig};
use ember::rbm::Rbm;
use ember::serve::{ModelRegistry, SamplingService};
use ember::store::{
    warm_start, ChaosDir, DaemonConfig, DiskDir, SnapshotDaemon, SnapshotStore, WriteFault,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic prototype fabrication, so every incarnation of the
/// fleet (pre-crash, restored) realizes the identical machine.
fn prototype(rbm: &Rbm) -> Box<dyn ember::substrate::ReplicableSubstrate> {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    SubstrateSpec::software(GsConfig::default()).fabricate_for(rbm, &mut rng)
}

fn service_over(registry: ModelRegistry) -> SamplingService {
    let service = SamplingService::builder()
        .shards(2)
        .registry(registry)
        .build();
    for name in service.registry().names() {
        let snap = service.registry().get(&name).unwrap();
        service
            .provision_model(&name, prototype(&snap.rbm))
            .unwrap();
    }
    service
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    let scratch = std::env::temp_dir().join(format!("ember-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // ── Act 1: a served model with history, persisted on publish ────
    let registry = ModelRegistry::new();
    registry
        .register("digits", Rbm::random(24, 12, 0.4, &mut rng))
        .unwrap();
    registry
        .publish("digits", Rbm::random(24, 12, 0.4, &mut rng))
        .unwrap();

    let chaos = Arc::new(ChaosDir::new(DiskDir::open(&scratch).unwrap(), 0x5EED));
    let store = SnapshotStore::new(Arc::clone(&chaos)).unwrap();
    let daemon = Arc::new(SnapshotDaemon::start(
        store.clone(),
        registry.clone(),
        DaemonConfig::default().with_keep_last(4),
    ));

    // The pre-crash fleet, with the daemon wired to the HTTP admin
    // surface: `POST /v1/admin/snapshot` seals on demand.
    let pre_crash = service_over(registry.clone());
    let options = |seed: u64| {
        SampleOptions::new()
            .samples(6)
            .gibbs_steps(3)
            .seed(0xBEEF ^ seed)
    };
    let server = Server::start_with_config(
        "127.0.0.1:0",
        pre_crash,
        ServerConfig::default().with_persistence(Arc::clone(&daemon)),
    )
    .unwrap();
    let client =
        Client::new(server.addr()).with_retry(RetryPolicy::default().with_max_retries(4), 0xC11E);
    let sealed = client.snapshot().unwrap();
    println!(
        "sealed snapshot seq={} over HTTP ({} bytes, {} models, {} versions)",
        sealed.sequence, sealed.bytes, sealed.models, sealed.versions
    );

    // The golden transcript: what v2 sampled at the moment of that
    // snapshot. Bit-identity after recovery is judged against this.
    let golden: Vec<_> = (0..4)
        .map(|s| {
            client
                .sample_binary("digits", &options(s))
                .unwrap()
                .to_dense()
        })
        .collect();
    println!("golden transcript: 4 seeded draws of 6×24 bits at v2");

    // ── Act 2: a publish whose snapshot dies mid-write ──────────────
    // Orderly edge shutdown first (daemon hook uninstalled with it), so
    // the *only* persistence of v3 is the write the chaos directory is
    // about to tear — a crash at the worst possible moment.
    server.shutdown(Duration::from_secs(5));
    drop(daemon);
    registry
        .publish("digits", Rbm::random(24, 12, 0.4, &mut rng))
        .unwrap();
    chaos.push_write_fault(WriteFault::ShortWrite { keep: 400 });
    match store.save(&registry) {
        Err(e) => println!("crash mid-write injected: {e}"),
        Ok(_) => unreachable!("the chaos directory tears this write"),
    }
    // ... and the "process" dies here.

    // ── Act 3: warm-start a fresh fleet from the wreckage ───────────
    let store2 = SnapshotStore::new(Arc::clone(&chaos)).unwrap();
    let (restored, load) = warm_start(
        &store2,
        SamplingService::builder().shards(2),
        |_name, rbm| prototype(rbm),
    )
    .unwrap();
    for (file, why) in &load.skipped {
        println!("stepped over torn snapshot {file}: {why}");
    }
    let version = restored.registry().get("digits").unwrap().version;
    println!("warm-started from {} at digits v{version}", load.loaded);
    assert_eq!(version, 2, "the doomed v3 must not survive its torn write");

    let server = Server::start("127.0.0.1:0", restored).unwrap();
    let client = Client::new(server.addr());
    let replayed: Vec<_> = (0..4)
        .map(|s| {
            client
                .sample_binary("digits", &options(s))
                .unwrap()
                .to_dense()
        })
        .collect();
    assert_eq!(
        replayed, golden,
        "restored fleet must serve v2's exact bits"
    );
    println!("restored fleet is bit-identical to the pre-crash transcript ✓");

    // ── Act 4: rollback through the admin surface ───────────────────
    let rolled = client.rollback("digits", 1).unwrap();
    println!(
        "rolled back to v{} → republished as v{}",
        rolled.rolled_back_to, rolled.new_version
    );
    server.shutdown(Duration::from_secs(5));

    let _ = std::fs::remove_dir_all(&scratch);
    println!("done");
}
