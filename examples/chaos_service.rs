//! Serving through a fault storm: the [`SamplingService`] riding out an
//! injected-chaos substrate — programming corruption, read faults,
//! latency spikes, and a mid-request panic — while a second model's
//! hard-failing hardware trips its circuit breaker into degraded
//! software service.
//!
//! The punchline is the robustness contract: **every request is
//! answered** (a response or a typed error, never a hang), and every
//! request whose faults were absorbed by the reprogram-and-retry loop
//! returns **exactly the fault-free bits** — chains recreate their RNG
//! streams from their seeds on every attempt, so recovery is invisible
//! in the samples.
//!
//! ```sh
//! cargo run --release --example chaos_service
//! ```

use std::time::{Duration, Instant};

use ember::brim::BrimConfig;
use ember::core::{RetryPolicy, SubstrateSpec};
use ember::rbm::Rbm;
use ember::serve::{SampleRequest, SamplingService, ServeError};
use ember::substrate::{ChaosConfig, ChaosSubstrate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // One BRIM machine, fabricated once: the clean reference service and
    // the chaotic service serve clones of the same physical identity, so
    // recovered responses can be checked bit-for-bit.
    let digits = Rbm::random(16, 8, 0.4, &mut rng);
    let digits_proto = SubstrateSpec::brim(BrimConfig::default()).fabricate_for(&digits, &mut rng);

    let clean = SamplingService::builder().shards(1).build();
    clean
        .register_model("digits@brim", digits.clone(), digits_proto.clone_boxed())
        .unwrap();

    // The same machine behind a chaos wrapper: 2% of programmings and
    // reads fault or corrupt, occasional 1 ms latency spikes, and one
    // injected panic on the 40th sampling call.
    let chaotic = Box::new(ChaosSubstrate::new(
        digits_proto.clone_boxed(),
        ChaosConfig::new(0xC4A05)
            .with_fault_rate(0.02)
            .with_latency_spikes(0.01, Duration::from_millis(1))
            .with_panic_on_sample_call(40),
    ));

    // A second model whose "hardware" hard-fails every operation: its
    // retries can never succeed, so its circuit breaker must trip.
    let fraud = Rbm::random(12, 6, 0.4, &mut rng);
    let fraud_proto = SubstrateSpec::annealer().fabricate_for(&fraud, &mut rng);
    let broken = Box::new(ChaosSubstrate::new(
        fraud_proto,
        ChaosConfig::new(9).with_hard_fault_rate(1.0),
    ));

    let service = SamplingService::builder()
        .shards(2)
        .retry_policy(RetryPolicy::default().with_max_retries(8))
        .breaker_threshold(2)
        .build();
    service
        .register_model("digits@brim", digits, chaotic)
        .unwrap();
    service
        .register_model("fraud@annealer", fraud, broken)
        .unwrap();

    println!("== phase 1: 48 mixed digits requests through a 2% fault storm ==");
    let mut recovered = 0u32;
    for i in 0..48u64 {
        let request = SampleRequest::new("digits@brim")
            .with_samples(1 + (i % 3) as usize)
            .with_gibbs_steps(2)
            .with_seed(i);
        match service.sample(request.clone()) {
            Ok(response) => {
                let golden = clean.sample(request).unwrap();
                assert_eq!(
                    response.samples, golden.samples,
                    "recovered responses must be bit-identical to the fault-free run"
                );
                recovered += 1;
            }
            Err(ServeError::ShardRestarted { shard }) => {
                println!("  request {i}: shard {shard} panicked mid-request; resubmitting");
                let response = service.sample(request.clone()).unwrap();
                let golden = clean.sample(request).unwrap();
                assert_eq!(response.samples, golden.samples);
                recovered += 1;
            }
            Err(other) => println!("  request {i}: {other}"),
        }
    }
    println!("  {recovered}/48 requests served with fault-free bits\n");

    println!("== phase 2: hard-failing fraud model trips its breaker ==");
    for i in 0..4u64 {
        match service.sample(SampleRequest::new("fraud@annealer").with_seed(i)) {
            Ok(response) if response.degraded => {
                println!("  request {i}: served DEGRADED (software fallback)");
            }
            Ok(_) => println!("  request {i}: served by the registered substrate"),
            Err(e) => println!("  request {i}: {e}"),
        }
    }
    println!();

    println!("== phase 3: deadline shedding ==");
    let expired = service
        .submit(
            SampleRequest::new("digits@brim")
                .with_seed(999)
                .with_deadline(Instant::now() - Duration::from_millis(1)),
        )
        .unwrap();
    println!("  past-due request: {}\n", expired.wait().unwrap_err());

    let stats = service.stats();
    println!("== fault & recovery accounting ==");
    println!("  substrate fault events   {}", stats.total_fault_events());
    println!(
        "  recovery retries         {}",
        stats.total_recovery_retries()
    );
    println!("  shard restarts           {}", stats.total_restarts());
    println!("  shed (past deadline)     {}", stats.total_shed_requests());
    println!("  rejected (backpressure)  {}", stats.rejected);
    println!("  degraded models          {:?}", stats.degraded);
    println!(
        "  kernel tier              {} ({} simd / {} packed / {} dense calls)",
        ember::kernels::active_tier().name(),
        stats.total_simd_kernel_calls(),
        stats.total_packed_kernel_calls(),
        stats.total_dense_kernel_calls()
    );
    for (name, model) in &stats.models {
        println!(
            "  {name:<16} served {:>3}  degraded {:>3}  failed {:>3}",
            model.sample_requests, model.degraded_requests, model.failed_requests
        );
    }
    println!(
        "  accepted-request latency {}",
        stats.latency() // queue-to-answer, merged across shards
    );

    let report = service.shutdown(Duration::from_secs(5));
    println!(
        "\n== drained: {} (aborted {}) ==",
        report.drained, report.aborted_requests
    );
}
