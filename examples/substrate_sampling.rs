//! The core physical claim of §3.3: the Ising substrate "directly
//! embodies" Boltzmann statistics, so letting it run with annealing noise
//! *samples* the model's distribution. This example programs a tiny RBM
//! onto the bipartite BRIM, collects annealed states, and compares the
//! empirical visible distribution against the exact one (and against
//! software Gibbs sampling).
//!
//! ```sh
//! cargo run --release --example substrate_sampling
//! ```

use ember::brim::{BipartiteBrim, BrimConfig, FlipSchedule};
use ember::rbm::{exact, gibbs, Rbm};
use ndarray::Array1;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn total_variation(p: &Array1<f64>, q: &Array1<f64>) -> f64 {
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let rbm = Rbm::random(5, 3, 0.8, &mut rng);
    let exact_dist = exact::visible_distribution(&rbm);
    println!("exact P(v) over 32 states computed by enumeration");

    // Substrate sampling: anneal from random states, read the visible side.
    let draws = 4000;
    let mut substrate_hist = Array1::<f64>::zeros(32);
    let mut brim = BipartiteBrim::new(rbm.to_bipartite(), BrimConfig::default());
    for _ in 0..draws {
        brim.release();
        // Constant flip injection plays the role of the thermal bath.
        brim.anneal(&FlipSchedule::constant(0.02, 120), &mut rng);
        let bits = brim.read_visible_bits();
        let code = bits
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
        substrate_hist[code] += 1.0;
    }
    substrate_hist /= draws as f64;

    // Software Gibbs reference.
    let samples = gibbs::sample_model(&rbm, draws, 100, 2, &mut rng);
    let mut gibbs_hist = Array1::<f64>::zeros(32);
    for row in samples.rows() {
        let code = row
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &x)| acc | (((x >= 0.5) as usize) << i));
        gibbs_hist[code] += 1.0;
    }
    gibbs_hist /= draws as f64;

    println!("\nstate  exact   substrate  gibbs");
    for code in 0..32 {
        if exact_dist[code] > 0.03 {
            println!(
                "{code:>5}  {:.3}   {:.3}      {:.3}",
                exact_dist[code], substrate_hist[code], gibbs_hist[code]
            );
        }
    }

    println!(
        "\ntotal variation to exact:  substrate {:.3}   software Gibbs {:.3}",
        total_variation(&substrate_hist, &exact_dist),
        total_variation(&gibbs_hist, &exact_dist),
    );
    println!("(the substrate's dynamics + flip injection approximate the Boltzmann");
    println!("distribution the MCMC algorithm targets — the physics does the sampling)");
}
