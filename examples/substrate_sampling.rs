//! The core physical claim of §3.3: the Ising substrate "directly
//! embodies" Boltzmann statistics, so a substrate can *sample* the
//! model's distribution. Since PR 2 that claim is a type: every backend
//! implements `ember::core::substrate::Substrate`, so one loop drives
//! the software analog node path, the BRIM dynamical machine, and a
//! Metropolis annealer over the *same* RBM — swapped at runtime through
//! `Box<dyn Substrate>` — and compares each empirical visible
//! distribution against the exact enumeration.
//!
//! ```sh
//! cargo run --release --example substrate_sampling
//! ```

use ember::brim::BrimConfig;
use ember::core::substrate::{AnnealerSubstrate, BrimSubstrate, SoftwareGibbs, Substrate};
use ember::core::GsConfig;
use ember::rbm::{exact, Rbm};
use ndarray::{Array1, Array2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn total_variation(p: &Array1<f64>, q: &Array1<f64>) -> f64 {
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Samples `P(v)` by alternating clamped conditional samples through the
/// trait — the identical k-step Gibbs loop every backend supports.
fn visible_histogram(
    substrate: &mut dyn Substrate,
    rbm: &Rbm,
    draws: usize,
    rng: &mut StdRng,
) -> Array1<f64> {
    let m = rbm.visible_len();
    // §3.2 steps 1–2: program the model onto the substrate.
    substrate.program(
        &rbm.weights().view(),
        &rbm.visible_bias().view(),
        &rbm.hidden_bias().view(),
    );
    let chains = 32;
    let mut v = Array2::from_shape_fn((chains, m), |_| f64::from(rng.random_bool(0.5)));
    for _ in 0..20 {
        let h = substrate.sample_hidden_batch(&v, rng);
        v = substrate.sample_visible_batch(&h, rng);
    }
    let mut hist = Array1::<f64>::zeros(1 << m);
    let per_chain = draws / chains;
    for _ in 0..per_chain {
        let h = substrate.sample_hidden_batch(&v, rng);
        v = substrate.sample_visible_batch(&h, rng);
        for row in v.rows() {
            let code = row
                .iter()
                .enumerate()
                .fold(0usize, |acc, (i, &x)| acc | (usize::from(x >= 0.5) << i));
            hist[code] += 1.0;
        }
    }
    hist / (per_chain * chains) as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let rbm = Rbm::random(5, 3, 0.8, &mut rng);
    let exact_dist = exact::visible_distribution(&rbm);
    println!("exact P(v) over 32 states computed by enumeration");

    // Three interchangeable backends behind one trait — the runtime swap
    // the paper's "drop-in replacement" claim promises.
    let software = SoftwareGibbs::new(5, 3, &GsConfig::default(), &mut rng);
    let backends: Vec<Box<dyn Substrate>> = vec![
        Box::new(software),
        Box::new(BrimSubstrate::for_rbm(&rbm, BrimConfig::default()).with_thermal_bath(0.005, 120)),
        Box::new(AnnealerSubstrate::for_rbm(&rbm)),
    ];

    let draws = 4000;
    let mut histograms = Vec::new();
    for mut backend in backends {
        let hist = visible_histogram(backend.as_mut(), &rbm, draws, &mut rng);
        let c = backend.counters();
        println!(
            "{:<16} tv={:.3}  phase points={:>8}  host words={:>8}",
            backend.name(),
            total_variation(&hist, &exact_dist),
            c.phase_points,
            c.host_words_transferred,
        );
        histograms.push((backend.name(), hist));
    }

    println!(
        "\nstate  exact   {:>10} {:>10} {:>10}",
        histograms[0].0, histograms[1].0, histograms[2].0
    );
    for code in 0..32 {
        if exact_dist[code] > 0.03 {
            println!(
                "{code:>5}  {:.3}   {:>10.3} {:>10.3} {:>10.3}",
                exact_dist[code],
                histograms[0].1[code],
                histograms[1].1[code],
                histograms[2].1[code]
            );
        }
    }
    println!("\n(the calibrated backends — software node path, T=1 Metropolis — match the");
    println!("enumeration tightly; the BRIM's flip-injection bath approximates it: the");
    println!("physics does the sampling, the trait makes the physics swappable)");
}
