//! DBN-DNN pipeline (Table 1): greedy layer-wise RBM pretraining followed
//! by backprop fine-tuning of an MLP initialized from the DBN — compared
//! against the same MLP trained from random initialization.
//!
//! ```sh
//! cargo run --release --example dbn_pretraining
//! ```

use ember::datasets::{digits, train_test_split};
use ember::rbm::{CdTrainer, Dbn, Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = digits::generate(700, 21).binarized(0.5);
    let split = train_test_split(&dataset, 0.2, &mut rng);
    println!(
        "mnist-like: {} train / {} test, DBN 784-64-32",
        split.train.len(),
        split.test.len()
    );

    // Greedy pretraining.
    let mut dbn = Dbn::random(&[784, 64, 32], 0.01, &mut rng);
    let stats = dbn.pretrain(
        split.train.images(),
        &CdTrainer::new(1, 0.1),
        20,
        6,
        &mut rng,
    );
    for (l, s) in stats.iter().enumerate() {
        println!(
            "layer {l}: final reconstruction error {:.3} over {} batches",
            s.reconstruction_error, s.batches
        );
    }

    let config = MlpConfig {
        learning_rate: 0.3,
        momentum: 0.8,
        weight_decay: 1e-4,
    };

    // Fine-tune the DBN-initialized network.
    let mut pretrained = Mlp::from_dbn(&dbn, 10, &mut rng);
    for _ in 0..30 {
        pretrained.train_epoch(
            split.train.images(),
            split.train.labels(),
            32,
            &config,
            &mut rng,
        );
    }
    let acc_pre = pretrained.accuracy(split.test.images(), split.test.labels());

    // Same architecture from random init.
    let mut scratch = Mlp::new(784, &[64, 32], 10, 0.05, &mut rng);
    for _ in 0..30 {
        scratch.train_epoch(
            split.train.images(),
            split.train.labels(),
            32,
            &config,
            &mut rng,
        );
    }
    let acc_scratch = scratch.accuracy(split.test.images(), split.test.labels());

    println!("\nDBN-pretrained + fine-tune : {:.1}%", acc_pre * 100.0);
    println!("random init + backprop     : {:.1}%", acc_scratch * 100.0);
    println!("(unsupervised pretraining should match or beat scratch at this data scale)");
}
