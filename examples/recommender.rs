//! Collaborative-filtering RBM on the MovieLens-like synthetic dataset
//! (the paper's recommendation-system benchmark, 943-100 RBM): train on
//! item/user like-matrices, predict held-out star ratings, report MAE.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use ember::core::{BgfConfig, BoltzmannGradientFollower};
use ember::datasets::movielens;
use ember::metrics::mean_absolute_error;
use ember::rbm::{CdTrainer, Rbm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mae(rbm: &Rbm, ml: &movielens::MovieLens, matrix: &ndarray::Array2<f64>) -> f64 {
    // Reconstruct like-probabilities for every (item, user), then map onto
    // the 1..5 star scale with a train-fitted affine calibration.
    ember_bench::movielens_mae(rbm, ml, matrix)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let ml = movielens::generate(30_000, 0.1, 99);
    let matrix = ml.item_user_matrix(4);
    println!(
        "movielens-like: {} users x {} items, {} train / {} test ratings",
        ml.users(),
        ml.items(),
        ml.train().len(),
        ml.test().len()
    );

    // Naive baseline: predict the global mean rating.
    let mean_stars =
        ml.train().iter().map(|r| r.stars as f64).sum::<f64>() / ml.train().len() as f64;
    let naive: Vec<f64> = vec![mean_stars; ml.test().len()];
    let targets: Vec<f64> = ml.test().iter().map(|r| r.stars as f64).collect();
    println!(
        "global-mean baseline MAE  : {:.3}",
        mean_absolute_error(&naive, &targets)
    );

    let mut cd = Rbm::random(ml.users(), 50, 0.01, &mut rng);
    CdTrainer::new(10, 0.05).train(&mut cd, &matrix, 50, 4, &mut rng);
    println!(
        "CD-10 RBM MAE             : {:.3}  (paper: 0.76)",
        mae(&cd, &ml, &matrix)
    );

    let init = Rbm::random(ml.users(), 50, 0.01, &mut rng);
    let mut bgf = BoltzmannGradientFollower::new(
        init,
        BgfConfig::default()
            .with_pump_ratio(1.0 / 1024.0)
            .with_negative_sweeps(3),
        &mut rng,
    );
    for _ in 0..4 {
        bgf.train_epoch(&matrix, &mut rng);
    }
    println!(
        "BGF RBM MAE               : {:.3}  (paper: 0.72)",
        mae(&bgf.effective_rbm(), &ml, &matrix)
    );
}
