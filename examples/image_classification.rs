//! Image classification with an RBM feature extractor and a logistic
//! regression head (the paper's §4.1 evaluation path), on the synthetic
//! MNIST-like dataset — trained once in software and once on the BGF
//! hardware model.
//!
//! ```sh
//! cargo run --release --example image_classification
//! ```

use ember::core::{BgfConfig, BoltzmannGradientFollower};
use ember::datasets::{digits, train_test_split};
use ember::rbm::{CdTrainer, Mlp, MlpConfig, Rbm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn head_accuracy(rbm: &Rbm, split: &ember::datasets::SplitSets, rng: &mut StdRng) -> f64 {
    let train_feats = rbm.hidden_probs_batch(split.train.images());
    let test_feats = rbm.hidden_probs_batch(split.test.images());
    let mut head = Mlp::new(rbm.hidden_len(), &[], split.train.classes(), 0.01, rng);
    let config = MlpConfig {
        learning_rate: 0.3,
        momentum: 0.8,
        weight_decay: 1e-4,
    };
    for _ in 0..60 {
        head.train_epoch(&train_feats, split.train.labels(), 32, &config, rng);
    }
    head.accuracy(&test_feats, split.test.labels())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = digits::generate(800, 42).binarized(0.5);
    let split = train_test_split(&dataset, 0.2, &mut rng);
    println!(
        "mnist-like: {} train / {} test images, {} classes",
        split.train.len(),
        split.test.len(),
        split.train.classes()
    );

    // Software CD-10 RBM.
    let mut cd = Rbm::random(784, 64, 0.01, &mut rng);
    CdTrainer::new(10, 0.1).train(&mut cd, split.train.images(), 20, 8, &mut rng);
    let acc_cd = head_accuracy(&cd, &split, &mut rng);
    println!(
        "CD-10 RBM + logistic head : {:.1}% test accuracy",
        acc_cd * 100.0
    );

    // BGF hardware RBM.
    let init = Rbm::random(784, 64, 0.01, &mut rng);
    let mut bgf = BoltzmannGradientFollower::new(
        init,
        BgfConfig::default()
            .with_pump_ratio(1.0 / 1024.0)
            .with_negative_sweeps(3),
        &mut rng,
    );
    for _ in 0..8 {
        bgf.train_epoch(split.train.images(), &mut rng);
    }
    let acc_bgf = head_accuracy(&bgf.effective_rbm(), &split, &mut rng);
    println!(
        "BGF RBM + logistic head   : {:.1}% test accuracy",
        acc_bgf * 100.0
    );

    println!(
        "\nagreement |CD - BGF| = {:.1}% (the paper's Table 4 finds parity within ~1%)",
        (acc_cd - acc_bgf).abs() * 100.0
    );
}
