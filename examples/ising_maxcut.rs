//! The substrate as a plain Ising optimizer (§2.1–2.2): solve random
//! max-cut instances with the BRIM dynamical simulator and compare against
//! software simulated annealing and (for small instances) brute force.
//!
//! ```sh
//! cargo run --release --example ising_maxcut
//! ```

use ember::brim::{BrimConfig, BrimMachine, FlipSchedule};
use ember::ising::{generate, AnnealSchedule, Annealer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);

    println!("small instance (16 vertices): BRIM vs SA vs brute force");
    let mc = generate::random_maxcut(16, 0.5, &mut rng);
    let problem = mc.to_ising();
    let (_, ground_energy) = problem.brute_force_ground_state();
    let optimal = mc.cut_from_energy(ground_energy);

    let mut brim = BrimMachine::new(problem.clone(), BrimConfig::default());
    brim.randomize(&mut rng);
    let brim_sol = brim.anneal(&FlipSchedule::geometric(0.08, 1e-4, 2000), &mut rng);
    let annealer = Annealer::new(AnnealSchedule::geometric(3.0, 0.02, 500));
    let sa_sol = annealer.solve(&problem, &mut rng);

    println!("  optimal cut        : {optimal}");
    println!(
        "  BRIM cut           : {} ({} phase points ≈ {:.1} ns of machine time)",
        mc.cut_from_energy(brim_sol.energy),
        brim_sol.phase_points,
        brim_sol.phase_points as f64 * 12e-3,
    );
    println!(
        "  simulated annealing: {}",
        mc.cut_from_energy(sa_sol.energy)
    );

    println!("\nlarger instance (120 vertices): best of 5 BRIM anneals vs SA");
    let mc = generate::random_maxcut(120, 0.3, &mut rng);
    let problem = mc.to_ising();
    let mut best_brim = f64::INFINITY;
    for _ in 0..5 {
        let mut brim = BrimMachine::new(problem.clone(), BrimConfig::default());
        brim.randomize(&mut rng);
        let sol = brim.anneal(&FlipSchedule::geometric(0.05, 1e-4, 3000), &mut rng);
        best_brim = best_brim.min(sol.energy);
    }
    let sa_sol = annealer.solve(&problem, &mut rng);
    println!("  BRIM cut           : {}", mc.cut_from_energy(best_brim));
    println!(
        "  simulated annealing: {}",
        mc.cut_from_energy(sa_sol.energy)
    );
    println!("  total edges        : {}", mc.edges().len());
}
