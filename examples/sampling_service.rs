//! Sampling as a service: one [`SamplingService`] serving two RBMs over
//! all three substrate backends to a crowd of concurrent clients, with
//! a training job republishing one model mid-traffic.
//!
//! The serving economics mirror the paper's §3.2 accelerator economics:
//! substrate programming (`m·n + m + n` words) and host round trips are
//! amortized over whole *batches* — here not a trainer's minibatch but a
//! coalesced group of unrelated client requests for the same model.
//! Because every chain runs on its own RNG stream, the coalescing is
//! bit-invisible: a seeded request returns the same samples at any shard
//! count, under any traffic.
//!
//! ```sh
//! cargo run --release --example sampling_service
//! ```

use ember::brim::BrimConfig;
use ember::core::{GsConfig, SubstrateSpec};
use ember::rbm::{CdTrainer, Rbm};
use ember::serve::{SampleRequest, SamplingService, TrainRequest};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // Two models: a "digits" RBM and a smaller "fraud" RBM.
    let digits = Rbm::random(16, 8, 0.4, &mut rng);
    let fraud = Rbm::random(12, 6, 0.4, &mut rng);

    // One service, four shards. Each registered model binds to its own
    // backend prototype — heterogeneous physics behind one API.
    let service = SamplingService::builder()
        .shards(4)
        .queue_rows(512)
        .master_seed(7)
        .build();
    let entries: [(&str, &Rbm, SubstrateSpec); 3] = [
        (
            "digits@software",
            &digits,
            SubstrateSpec::software(GsConfig::default()),
        ),
        (
            "digits@brim",
            &digits,
            SubstrateSpec::Brim {
                config: BrimConfig::default(),
                flip_probability: 0.02,
                anneal_steps: 60,
            },
        ),
        ("fraud@annealer", &fraud, SubstrateSpec::annealer()),
    ];
    for (name, rbm, spec) in &entries {
        let proto = spec.fabricate_for(rbm, &mut rng);
        service
            .register_model(*name, (*rbm).clone(), proto)
            .unwrap();
        println!(
            "registered {name:<16} ({}x{})",
            rbm.visible_len(),
            rbm.hidden_len()
        );
    }

    // Mixed traffic: 8 client threads × 12 requests, round-robin over
    // the three served models, plus one training job on the digits model
    // racing the samplers.
    let names = [entries[0].0, entries[1].0, entries[2].0];
    let trained = std::thread::scope(|scope| {
        for client in 0..8u64 {
            let service = &service;
            scope.spawn(move || {
                for r in 0..12u64 {
                    let name = names[((client + r) % 3) as usize];
                    let resp = service
                        .sample(
                            SampleRequest::new(name)
                                .with_samples(2)
                                .with_gibbs_steps(2)
                                .with_seed(client * 1000 + r),
                        )
                        .unwrap();
                    assert!(resp.samples.iter().all(|&x| x == 0.0 || x == 1.0));
                }
            });
        }
        let data = Array2::from_shape_fn((40, 16), |(i, j)| f64::from((i + j) % 2 == 0));
        service
            .train(
                TrainRequest::new("digits@software", data)
                    .with_trainer(CdTrainer::new(1, 0.05))
                    .with_batch_size(8)
                    .with_epochs(2)
                    .with_seed(99),
            )
            .unwrap()
    });
    println!(
        "\ntraining republished digits@software as v{} (recon err {:.3})",
        trained.new_version, trained.stats.reconstruction_error
    );

    // A fixed-seed request reproduces bit-identically after the storm —
    // versioned models make "which parameters answered me" explicit.
    let a = service
        .sample(
            SampleRequest::new("fraud@annealer")
                .with_samples(3)
                .with_seed(5),
        )
        .unwrap();
    let b = service
        .sample(
            SampleRequest::new("fraud@annealer")
                .with_samples(3)
                .with_seed(5),
        )
        .unwrap();
    assert_eq!(a.samples, b.samples);
    println!("fixed-seed replay is bit-identical (v{})", b.model_version);

    let stats = service.stats();
    println!("\nper-shard:");
    for (i, s) in stats.shards.iter().enumerate() {
        println!(
            "  shard {i}: {:>3} requests  {:>3} rows  {:>3} batches  largest {:>2}  {:>9} phase points",
            s.sample_requests, s.rows, s.batches, s.largest_batch, s.counters.phase_points
        );
    }
    println!("per-model:");
    for (name, m) in &stats.models {
        println!(
            "  {name:<16} {:>3} sample reqs  {:>2} train reqs  {:>9} phase points  {:>9} host words",
            m.sample_requests, m.train_requests, m.counters.phase_points,
            m.counters.host_words_transferred
        );
    }
    println!(
        "\ncoalescing factor: {:.2} rows/batch over {} batches ({} rejected)",
        stats.mean_coalesced_rows(),
        stats.total_batches(),
        stats.rejected
    );
    println!(
        "kernel mix: {:.0}% of sampling calls bit-packed ({} packed / {} dense)",
        100.0 * stats.packed_kernel_fraction(),
        stats.total_packed_kernel_calls(),
        stats.total_dense_kernel_calls()
    );
    println!(
        "kernel tier: {} ({:.0}% of sampling calls on a vector SIMD tier)",
        ember::kernels::active_tier().name(),
        100.0 * stats.simd_kernel_fraction(),
    );
}
