//! # ember
//!
//! Energy-based learning on a simulated Ising-machine substrate — a full
//! reproduction of *"Supporting Energy-Based Learning with an Ising
//! Machine Substrate: A Case Study on RBM"* (MICRO 2023) as a Rust
//! workspace.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ising`] | `ember-ising` | Ising model, QUBO, max-cut, simulated annealing |
//! | [`brim`] | `ember-brim` | BRIM dynamical substrate simulator |
//! | [`analog`] | `ember-analog` | Sigmoid unit, thermal RNG, comparator, converters, charge pump, noise models |
//! | [`substrate`] | `ember-substrate` | The [`substrate::Substrate`] trait: the seam between trainers and interchangeable sampling backends — including the fallible `try_*` entry points, fault taxonomy (`SubstrateFault`), and the seeded fault-injecting `ChaosSubstrate` decorator |
//! | [`rbm`] | `ember-rbm` | RBM, CD-k/PCD/exact-ML trainers (substrate-generic), DBN, MLP, conv-RBM patches |
//! | [`core`] | `ember-core` | **The paper's contribution**: Gibbs Sampler and Boltzmann Gradient Follower accelerator models, the three `Substrate` backends (`core::substrate`), the `SubstrateSpec` fabrication recipes, and the bit-packed binary-state sampling kernels (`core::kernels`) |
//! | [`serve`] | `ember-serve` | Sampling-as-a-service: `ModelRegistry` of named versioned RBMs, sharded request-coalescing `SamplingService` over any substrate backend, self-healing under faults (retry-with-reprogram, circuit breakers, shard supervision, deadlines, bounded drain) |
//! | [`http`] | `ember-http` | Dependency-free HTTP/1.1 network edge over a `SamplingService`: `POST …/sample`, `POST …/train`, `POST …/rollback`, `POST /v1/admin/snapshot`, `GET /v1/models`, `GET /v1/stats`, `GET /healthz`; a bit-packed binary wire format (`application/x-ember-bits`, 1 bit/unit) negotiated against a JSON fallback; typed error taxonomy → status codes; slowloris timeouts + body ceiling (`408`/`413`); a blocking [`http::Client`] speaking both encodings, with seeded retry (`Client::with_retry`) |
//! | [`store`] | `ember-store` | Durable model lifecycle: crash-safe `SnapshotStore` over a versioned checksummed binary snapshot format (delta-compressed version chains, atomic temp-file+fsync+rename writes, automatic fallback to the last good snapshot), `SnapshotDaemon` on-publish/periodic persistence, `warm_start` recovery into a bit-identical serving fleet, and a fault-injecting `ChaosDir` for crash drills |
//! | [`datasets`] | `ember-datasets` | Synthetic stand-ins for the paper's eight datasets |
//! | [`metrics`] | `ember-metrics` | AIS, KL, ROC/AUC, MAE, smoothing |
//! | [`perf`] | `ember-perf` | Timing/energy/area models for Figs. 5–6 and Tables 2–3 |
//!
//! # Quickstart
//!
//! ```
//! use ember::core::{BgfConfig, BoltzmannGradientFollower};
//! use ember::rbm::Rbm;
//! use ndarray::Array2;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let data = Array2::from_shape_fn((40, 8), |(i, _)| (i % 2) as f64);
//! let init = Rbm::random(8, 4, 0.01, &mut rng);
//! let mut machine = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
//! machine.train_epoch(&data, &mut rng);
//! let trained = machine.read_out(&mut rng);
//! assert_eq!(trained.visible_len(), 8);
//! ```
//!
//! # Quickstart: sampling as a service
//!
//! Models live in a registry; worker shards serve them over cloned
//! substrate replicas, coalescing concurrent requests into batched
//! substrate calls (seeded requests are bit-reproducible at any shard
//! count):
//!
//! ```
//! use ember::core::{GsConfig, SubstrateSpec};
//! use ember::rbm::Rbm;
//! use ember::serve::{SampleRequest, SamplingService};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let rbm = Rbm::random(8, 4, 0.2, &mut rng);
//! let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
//! let service = SamplingService::builder().shards(2).build();
//! service.register_model("demo", rbm, proto).unwrap();
//! let resp = service
//!     .sample(SampleRequest::new("demo").with_samples(4).with_gibbs_steps(2).with_seed(1))
//!     .unwrap();
//! assert_eq!(resp.samples.dim(), (4, 8));
//! ```
//!
//! # Quickstart: running under faults
//!
//! The substrate is analog hardware, so the serving layer treats it as
//! *fallible*: wrap any backend in a seeded
//! [`substrate::ChaosSubstrate`] to inject programming corruption, read
//! faults, and latency spikes, and the service absorbs them —
//! reprogram-and-retry under a deterministic
//! [`core::RetryPolicy`] (a successful retry returns **exactly** the
//! fault-free bits, because every chain re-seeds from its own stream),
//! a per-model circuit breaker that degrades persistent failures to a
//! software fallback, panic-supervised shards, and deadline shedding:
//!
//! ```
//! use ember::core::{GsConfig, RetryPolicy, SubstrateSpec};
//! use ember::rbm::Rbm;
//! use ember::serve::{SampleRequest, SamplingService};
//! use ember::substrate::{ChaosConfig, ChaosSubstrate};
//! use rand::SeedableRng;
//! use std::time::Duration;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let rbm = Rbm::random(8, 4, 0.2, &mut rng);
//! let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
//!
//! // The same machine, clean and chaos-wrapped (1% seeded fault rate).
//! let clean = SamplingService::builder().shards(1).build();
//! clean.register_model("demo", rbm.clone(), proto.clone_boxed()).unwrap();
//! let chaotic = Box::new(ChaosSubstrate::new(
//!     proto,
//!     ChaosConfig::new(42).with_fault_rate(0.01),
//! ));
//! let service = SamplingService::builder()
//!     .shards(2)
//!     .retry_policy(RetryPolicy::default().with_max_retries(8))
//!     .build();
//! service.register_model("demo", rbm, chaotic).unwrap();
//!
//! let request = SampleRequest::new("demo").with_samples(4).with_gibbs_steps(2).with_seed(1);
//! let stormy = service.sample(request.clone()).unwrap();
//! let golden = clean.sample(request).unwrap();
//! assert_eq!(stormy.samples, golden.samples); // recovery is bit-invisible
//! assert!(!stormy.degraded);
//!
//! // Bounded, graceful drain.
//! let report = service.shutdown(Duration::from_secs(5));
//! assert!(report.drained);
//! ```
//!
//! See `examples/chaos_service.rs` for the full storm — injected
//! panics, breaker trips into degraded service, deadline shedding, and
//! the fault/recovery accounting in `serve::ServiceStats`.
//!
//! # Quickstart: HTTP serving
//!
//! [`http::Server`] puts a network edge in front of an owned
//! [`serve::SamplingService`] — a dependency-free HTTP/1.1 listener
//! (blocking accept loop + worker threads, no async runtime). Sample
//! responses negotiate a **bit-packed binary wire format** via
//! `Accept: application/x-ember-bits`: a 24-byte header plus one bit
//! per unit (98 payload bytes/row at 784 visible units, ≥ 50× smaller
//! than the JSON fallback). Seeded requests over HTTP return **exactly
//! the bits** `service.sample()` returns in-process, at any shard
//! count:
//!
//! ```
//! use ember::core::{GsConfig, SubstrateSpec};
//! use ember::http::{Client, SampleOptions, Server};
//! use ember::rbm::Rbm;
//! use ember::serve::SamplingService;
//! use rand::SeedableRng;
//! use std::time::Duration;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let rbm = Rbm::random(8, 4, 0.2, &mut rng);
//! let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
//! let service = SamplingService::builder().shards(2).build();
//! service.register_model("demo", rbm, proto).unwrap();
//!
//! let server = Server::start("127.0.0.1:0", service).unwrap();
//! let client = Client::new(server.addr());
//! let reply = client
//!     .sample_binary("demo", &SampleOptions::new().samples(4).gibbs_steps(2).seed(1))
//!     .unwrap();
//! assert_eq!(reply.to_dense().dim(), (4, 8));
//!
//! let report = server.shutdown(Duration::from_secs(5));
//! assert!(report.service.drained);
//! ```
//!
//! Any HTTP client works — the JSON fallback is the curl-friendly
//! encoding, and the binary format is one `Accept` header away:
//!
//! ```sh
//! curl -s localhost:8080/v1/models
//! curl -s -X POST localhost:8080/v1/models/demo/sample \
//!      -H 'Content-Type: application/json' \
//!      -d '{"n_samples": 4, "gibbs_steps": 2, "seed": 1}'
//! curl -s -X POST localhost:8080/v1/models/demo/sample \
//!      -H 'Accept: application/x-ember-bits' \
//!      -H 'X-Ember-Samples: 4' -H 'X-Ember-Seed: 1' \
//!      --output samples.bits
//! curl -s localhost:8080/v1/stats
//! ```
//!
//! Backpressure and failures arrive as a typed taxonomy: a full queue
//! is `429` with `Retry-After` (and a microsecond-resolution
//! `X-Ember-Retry-After-Ms`), a blown `X-Ember-Timeout-Ms` budget is
//! `504`, an unknown model `404`, and a draining edge `503` — see
//! `examples/http_service.rs` for the full tour.
//!
//! # Overload behavior
//!
//! The service stays predictable when offered more work than it can
//! serve, with four cooperating mechanisms — none of which touches the
//! per-row RNG streams, so every *accepted* request returns the same
//! bits loaded or unloaded:
//!
//! * **Bounded coalescing window**
//!   ([`serve::ServiceBuilder::coalesce_window`], default off): a
//!   partially-filled batch dispatches as soon as the group fills *or*
//!   its oldest request has waited the window out, so a lone request's
//!   worst-case latency is `window + service_time` instead of "whenever
//!   batch-mates show up".
//! * **Priority lanes** ([`serve::Priority`], set per request with
//!   [`serve::SampleRequest::with_priority`], over HTTP via the
//!   `X-Ember-Priority` header): shards drain `Interactive` before
//!   `Bulk`; training always rides the Bulk lane.
//! * **Admission control**: each deadlined request's completion is
//!   projected from the measured per-row service rate; work that
//!   provably cannot meet its deadline is refused *at enqueue* with the
//!   typed [`serve::ServeError::Overloaded`] (`429 overloaded` over
//!   HTTP, with `Retry-After` / `X-Ember-Retry-After-Ms` hints) instead
//!   of burning a shard on an answer nobody will read. `504
//!   deadline_exceeded` stays reserved for deadlines that expire while
//!   queued.
//! * **Bulk-first shedding**: when the queue is full, an arriving
//!   `Interactive` request evicts the newest queued `Bulk` work (shed
//!   with `Overloaded` and a drain hint) before any interactive
//!   traffic is turned away.
//!
//! The client side cooperates: [`http::Client::with_retry`] draws
//! retries from a **token-bucket budget** (refilled by successes, see
//! [`http::Client::retry_budget`]), so a browning-out server sees
//! failures surface at the client instead of a retry storm multiplying
//! its load. Accepted-request latency is recorded per shard in
//! log-bucketed [`serve::LatencyHistogram`]s — p50/p99/p99.9 ride
//! [`serve::ServiceStats`] and `GET /v1/stats`.
//!
//! ```
//! use ember::core::{GsConfig, SubstrateSpec};
//! use ember::rbm::Rbm;
//! use ember::serve::{Priority, SampleRequest, SamplingService, ServeError};
//! use rand::SeedableRng;
//! use std::time::Duration;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let rbm = Rbm::random(8, 4, 0.2, &mut rng);
//! let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
//! let service = SamplingService::builder()
//!     .shards(1)
//!     .coalesce_window(Duration::from_millis(2)) // bounded batch wait
//!     .build();
//! service.register_model("demo", rbm, proto).unwrap();
//!
//! // Lanes are scheduling, not semantics: same seed, same bits.
//! let fast = SampleRequest::new("demo").with_gibbs_steps(2).with_seed(1);
//! let a = service.sample(fast.clone()).unwrap();
//! let b = service.sample(fast.with_priority(Priority::Bulk)).unwrap();
//! assert_eq!(a.samples, b.samples);
//!
//! // A deadline the backlog provably cannot meet is refused at
//! // enqueue, with a usable retry hint.
//! let doomed = SampleRequest::new("demo")
//!     .with_samples(64)
//!     .with_deadline_in(Duration::from_micros(50));
//! assert!(matches!(
//!     service.submit(doomed).unwrap_err(),
//!     ServeError::Overloaded { .. }
//! ));
//!
//! // Accepted-request latency quantiles, live.
//! assert_eq!(service.stats().latency().count(), 2);
//! ```
//!
//! # Quickstart: persistence & recovery
//!
//! Trained weights live on *volatile* analog hardware (§3.2 of the
//! paper: couplings are reprogrammed every minibatch), so the durable
//! source of truth is the registry — and [`store`] makes it crash-safe.
//! A [`store::SnapshotStore`] seals the registry's full version chains
//! into checksummed, delta-compressed snapshot files with atomic
//! write-then-rename; a [`store::SnapshotDaemon`] keeps it in sync with
//! every publication; and [`store::warm_start`] rebuilds a serving
//! fleet from the last **good** snapshot — stepping over torn or
//! bit-rotted files with typed errors, never serving corrupt
//! parameters. Restored services sample **bit-identical** to the
//! pre-crash fleet:
//!
//! ```
//! use ember::core::{GsConfig, SubstrateSpec};
//! use ember::rbm::Rbm;
//! use ember::serve::{ModelRegistry, SamplingService};
//! use ember::store::{warm_start, DaemonConfig, MemDir, SnapshotDaemon, SnapshotStore};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let registry = ModelRegistry::new();
//! registry.register("demo", Rbm::random(8, 4, 0.2, &mut rng)).unwrap();
//!
//! // Persist: the daemon snapshots on every publication (swap MemDir
//! // for `SnapshotStore::open(path)` to land on disk).
//! let store = SnapshotStore::new(MemDir::new()).unwrap();
//! let daemon = SnapshotDaemon::start(store.clone(), registry.clone(), DaemonConfig::default());
//! registry.publish("demo", Rbm::random(8, 4, 0.2, &mut rng)).unwrap();
//! drop(daemon); // orderly shutdown flushes the freshest state
//!
//! // "Crash", then warm-start a new fleet from the last good snapshot.
//! let (service, report) = warm_start(
//!     &store,
//!     SamplingService::builder().shards(2),
//!     |_name, rbm| {
//!         let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!         SubstrateSpec::software(GsConfig::default()).fabricate_for(rbm, &mut rng)
//!     },
//! )
//! .unwrap();
//! assert!(report.skipped.is_empty(), "no torn files to step over");
//! assert_eq!(service.registry().get("demo").unwrap().version, 2);
//!
//! // Rollback: v1's parameters come back as a NEW version (the
//! // counter only moves forward), and the next snapshot makes it
//! // durable. Over HTTP this is `POST /v1/models/demo/rollback`.
//! assert_eq!(service.rollback("demo", 1).unwrap(), 3);
//! store.save(service.registry()).unwrap();
//! ```
//!
//! Attach the daemon to an [`http::Server`] via
//! [`http::ServerConfig::with_persistence`] to expose
//! `POST /v1/admin/snapshot`, and see `examples/durable_service.rs` for
//! the full crash drill — kill-mid-write via [`store::ChaosDir`],
//! fallback to the previous snapshot, bit-identity proof, rollback.
//!
//! # Kernel selection: bit-packed vs dense
//!
//! Every product with a binary left operand in the sampling hot path —
//! `states · W`, `states · Wᵀ` — runs on the bit-packed kernel layer
//! (`core::kernels`) by default: exact-`{0, 1}` batches pack 64 states
//! per `u64` word and the GEMM reduces to summing selected weight rows
//! (no multiplies, zeros skipped a word at a time). The packed and
//! dense kernels accumulate in the same index order, so **samples are
//! bit-identical either way** — select with
//! `GsConfig::with_kernel(GsKernel::Dense)` (or
//! `AnnealerSubstrate::with_kernel`) to measure against the dense
//! baseline, and read `HardwareCounters::packed_kernel_calls` /
//! `dense_kernel_calls` (also surfaced per shard by
//! `serve::ServiceStats`) to see which kernel served each call:
//!
//! ```
//! use ember::core::{GsConfig, GsKernel, SubstrateSpec};
//! use ember::core::substrate::Substrate;
//! use ember::rbm::Rbm;
//! use ndarray::Array2;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let rbm = Rbm::random(8, 4, 0.2, &mut rng);
//! let config = GsConfig::default().with_kernel(GsKernel::Packed); // the default
//! let mut sub = SubstrateSpec::software(config).fabricate_for(&rbm, &mut rng);
//! let v = Array2::from_shape_fn((4, 8), |(i, j)| f64::from((i + j) % 2 == 0));
//! let h = sub.sample_hidden_batch(&v, &mut rng);
//! assert_eq!(h.dim(), (4, 4));
//! assert_eq!(sub.counters().packed_kernel_calls, 1);
//! ```
//!
//! # Kernel tiers: runtime SIMD dispatch
//!
//! Underneath the packed/dense split sits a second axis: every inner
//! field loop — the packed kernel's selected-row adds, the dense GEMM's
//! `ikj` update, the serial per-chain field evaluation, the BRIM GEMVs
//! and annealer sweep dots — executes on a runtime-dispatched **SIMD
//! tier** ([`kernels::SimdTier`]): AVX2 on x86_64, NEON on aarch64,
//! detected once per process and cached, with the original scalar loops
//! kept verbatim as the always-available reference and fallback. The
//! vector paths perform the same floating-point operations in the same
//! per-element order as the scalar reference (no FMA contraction, same
//! reduction tree), so **the tier never changes a sampled bit** — only
//! how fast it is produced. The serial tier is what finally speeds up a
//! *single* Gibbs chain, which batching cannot help.
//!
//! * [`kernels::active_tier`] reports the tier in use;
//!   `SimdTier::name()` gives `"avx2"` / `"neon"` / `"scalar"`.
//! * Set the `EMBER_FORCE_SCALAR=1` environment variable (read at
//!   first dispatch), or call
//!   [`kernels::force_tier`]`(Some(SimdTier::Scalar))` at runtime, to
//!   pin the scalar reference tier — for the CI fallback matrix or to
//!   debug a suspected miscompare in the field. `force_tier(None)`
//!   restores detection.
//! * `HardwareCounters::simd_kernel_calls` counts sampling calls whose
//!   inner loops ran on a vector tier (on such a tier it equals
//!   `packed_kernel_calls + dense_kernel_calls`; it stays `0` when
//!   scalar is pinned). `serve::ServiceStats::simd_kernel_fraction`
//!   aggregates it across shards — the deployment health check that a
//!   fleet is actually on the fast tier.
//!
//! ```
//! use ember::kernels;
//!
//! let tier = kernels::active_tier();
//! println!("field kernels running on the {} tier", tier.name());
//! // Pin the scalar reference (bit-identical, just slower), then
//! // restore automatic detection.
//! kernels::force_tier(Some(kernels::SimdTier::Scalar));
//! assert_eq!(kernels::active_tier(), kernels::SimdTier::Scalar);
//! kernels::force_tier(None);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (e.g.
//! `examples/sampling_service.rs` for mixed sample/train traffic over
//! all three backends) and `crates/bench/src/bin/` for the
//! per-table/figure experiment harness.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use ember_analog as analog;
pub use ember_brim as brim;
pub use ember_core as core;
pub use ember_datasets as datasets;
pub use ember_http as http;
pub use ember_ising as ising;
pub use ember_metrics as metrics;
pub use ember_perf as perf;
pub use ember_rbm as rbm;
pub use ember_serve as serve;
pub use ember_store as store;
pub use ember_substrate as substrate;

// The kernel-tier surface (`SimdTier`, `active_tier`, `force_tier`,
// the bit-packed and serial-field kernels) at the facade root: see the
// "Kernel tiers" section above.
pub use ember_core::kernels;
