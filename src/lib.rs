//! # ember
//!
//! Energy-based learning on a simulated Ising-machine substrate — a full
//! reproduction of *"Supporting Energy-Based Learning with an Ising
//! Machine Substrate: A Case Study on RBM"* (MICRO 2023) as a Rust
//! workspace.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ising`] | `ember-ising` | Ising model, QUBO, max-cut, simulated annealing |
//! | [`brim`] | `ember-brim` | BRIM dynamical substrate simulator |
//! | [`analog`] | `ember-analog` | Sigmoid unit, thermal RNG, comparator, converters, charge pump, noise models |
//! | [`substrate`] | `ember-substrate` | The [`substrate::Substrate`] trait: the seam between trainers and interchangeable sampling backends |
//! | [`rbm`] | `ember-rbm` | RBM, CD-k/PCD/exact-ML trainers (substrate-generic), DBN, MLP, conv-RBM patches |
//! | [`core`] | `ember-core` | **The paper's contribution**: Gibbs Sampler and Boltzmann Gradient Follower accelerator models, plus the three `Substrate` backends (`core::substrate`) and the `SubstrateSpec` fabrication recipes |
//! | [`serve`] | `ember-serve` | Sampling-as-a-service: `ModelRegistry` of named versioned RBMs, sharded request-coalescing `SamplingService` over any substrate backend |
//! | [`datasets`] | `ember-datasets` | Synthetic stand-ins for the paper's eight datasets |
//! | [`metrics`] | `ember-metrics` | AIS, KL, ROC/AUC, MAE, smoothing |
//! | [`perf`] | `ember-perf` | Timing/energy/area models for Figs. 5–6 and Tables 2–3 |
//!
//! # Quickstart
//!
//! ```
//! use ember::core::{BgfConfig, BoltzmannGradientFollower};
//! use ember::rbm::Rbm;
//! use ndarray::Array2;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let data = Array2::from_shape_fn((40, 8), |(i, _)| (i % 2) as f64);
//! let init = Rbm::random(8, 4, 0.01, &mut rng);
//! let mut machine = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
//! machine.train_epoch(&data, &mut rng);
//! let trained = machine.read_out(&mut rng);
//! assert_eq!(trained.visible_len(), 8);
//! ```
//!
//! # Quickstart: sampling as a service
//!
//! Models live in a registry; worker shards serve them over cloned
//! substrate replicas, coalescing concurrent requests into batched
//! substrate calls (seeded requests are bit-reproducible at any shard
//! count):
//!
//! ```
//! use ember::core::{GsConfig, SubstrateSpec};
//! use ember::rbm::Rbm;
//! use ember::serve::{SampleRequest, SamplingService};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let rbm = Rbm::random(8, 4, 0.2, &mut rng);
//! let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
//! let service = SamplingService::builder().shards(2).build();
//! service.register_model("demo", rbm, proto).unwrap();
//! let resp = service
//!     .sample(SampleRequest::new("demo").with_samples(4).with_gibbs_steps(2).with_seed(1))
//!     .unwrap();
//! assert_eq!(resp.samples.dim(), (4, 8));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (e.g.
//! `examples/sampling_service.rs` for mixed sample/train traffic over
//! all three backends) and `crates/bench/src/bin/` for the
//! per-table/figure experiment harness.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use ember_analog as analog;
pub use ember_brim as brim;
pub use ember_core as core;
pub use ember_datasets as datasets;
pub use ember_ising as ising;
pub use ember_metrics as metrics;
pub use ember_perf as perf;
pub use ember_rbm as rbm;
pub use ember_serve as serve;
pub use ember_substrate as substrate;
