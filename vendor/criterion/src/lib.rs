//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Implements enough surface for this workspace's `benches/`: timed
//! closures with warm-up, median-of-samples reporting to stdout, and the
//! `criterion_group!`/`criterion_main!` macros. No statistics beyond the
//! median, no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs registered groups (called by `criterion_main!`).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Benchmarks a function with an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmarked closure; times its `iter` calls.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count so one sample
    /// takes ≳1 ms.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        let samples = self.samples.capacity().max(1);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!("{name:<48} median {median:>12.3?}");
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
