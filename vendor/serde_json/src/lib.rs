//! Offline vendored `serde_json`: JSON text ⇄ the vendored serde
//! [`Value`](serde::Value) tree.
//!
//! Floats are printed with Rust's shortest round-trip formatting (`{:?}`),
//! so `f64` values survive a serialize/parse cycle bit-exactly — the
//! persistence tests rely on this.

use serde::{Serialize, Value};

pub use serde::Error;

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Currently infallible for the supported data model; kept fallible for
/// API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable indented JSON.
///
/// # Errors
///
/// Currently infallible for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// [`Error`] on malformed JSON.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // {:?} is Rust's shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!("unexpected input: {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::custom("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = vec![vec![1.0, 2.0], vec![3.0]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""a\n\"bé""#).unwrap();
        assert_eq!(s, "a\n\"bé");
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let v = vec![1.0, 2.0];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
    }
}
