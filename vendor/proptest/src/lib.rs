//! Offline vendored subset of `proptest`: the [`proptest!`] macro,
//! [`Strategy`] for ranges / tuples / `any::<T>()` /
//! [`collection::vec`], and `prop_assert!`-style assertions.
//!
//! Each `#[test]` runs `ProptestConfig::cases` random cases drawn from a
//! deterministic RNG seeded by the test's name, so failures reproduce
//! across runs. Shrinking is not implemented — a failing case panics
//! with the values baked into the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving case generation.
pub type TestRng = StdRng;

/// Builds the RNG for a named test.
pub fn test_rng(name: &str) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F0.5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes.
        let exp = rng.random_range(-6.0..6.0f64);
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(exp)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Always produces a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Index sampling, mirroring `proptest::sample`.
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::Rng;

    /// A deferred index: drawn as raw entropy, resolved against a
    /// collection length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves to a concrete index in `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.random())
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `cases` deterministic random cases (used by [`proptest!`]).
pub fn run_cases(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng, u32)) {
    let mut rng = test_rng(name);
    for case_index in 0..config.cases {
        case(&mut rng, case_index);
    }
}

/// Vendored stand-in for proptest's test macro: runs each inner function
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |rng, _case| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                $body
            });
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// Skips the current case when the assumption does not hold (the case
/// simply ends; no replacement case is generated).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
    /// Namespace alias matching upstream (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_vec(pair in (0u32..5, 0u32..5), v in collection::vec(0i32..3, 2..6)) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..3).contains(&x)));
        }

        #[test]
        fn mapped_strategy(even in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(even % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("same_name");
        let mut b = crate::test_rng("same_name");
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
