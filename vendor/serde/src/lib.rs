//! Offline vendored serde facade.
//!
//! The real serde's visitor-based architecture is far more than this
//! workspace needs: every serialization here goes through `serde_json`
//! to/from text. This vendored crate therefore uses a simple
//! **value-tree data model**: [`Serialize`] renders a type into a
//! [`Value`], [`Deserialize`] rebuilds the type from one. The companion
//! `serde_derive` proc-macro generates both impls for structs with named
//! fields and for enums (unit and struct variants, externally tagged —
//! the same JSON shape real serde produces).

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (also covers unsigned values up to `i64::MAX`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order preserved for readable output.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map pairs, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// [`Error`] when the tree's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers mirroring `serde::de`.
pub mod de {
    /// Marker for owned deserialization; equivalent to [`crate::Deserialize`]
    /// in this lifetime-free vendored model.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Fetches a struct field during generated deserialization.
///
/// # Errors
///
/// [`Error`] when `value` is not a map or lacks `key`.
pub fn get_field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, Error> {
    value
        .get(key)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom("expected integer")),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::Int(v as i64) } else { Value::UInt(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) if *i >= 0 => <$t>::try_from(*i as u64)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom("expected unsigned integer")),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializes by leaking the string (real serde cannot do this at
    /// all; the workspace derives on `&'static str` fields of static
    /// tables, deserialized only in tests/benches, where the leak is
    /// bounded and harmless).
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?;
        if seq.len() != N {
            return Err(Error::custom("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq.iter()) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq().ok_or_else(|| Error::custom("expected tuple"))?;
                let mut it = seq.iter();
                Ok(($({
                    let _ = stringify!($name);
                    $name::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                },)+))
            }
        }
    )*};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<K: ToString + std::str::FromStr + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString + std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?;
        let mut out = BTreeMap::new();
        for (k, v) in pairs {
            let key = k
                .parse()
                .map_err(|_| Error::custom("unparseable map key"))?;
            out.insert(key, V::from_value(v)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        let t: (f64, f64) = Deserialize::from_value(&(1.0, 2.0).to_value()).unwrap();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<f64>.to_value(), Value::Null);
        let x: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(x, None);
    }

    #[test]
    fn field_lookup() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert!(get_field(&v, "a").is_ok());
        assert!(get_field(&v, "b").is_err());
    }
}
