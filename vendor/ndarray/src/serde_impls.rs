//! Serde support for the vendored arrays (own format; only read back by
//! this workspace's vendored `serde_json`).

use crate::{Array1, Array2};
use serde::{Deserialize, Error, Serialize, Value};

impl<T: Serialize> Serialize for Array1<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.data.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Array1<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence for Array1"))?;
        Ok(Array1 {
            data: seq.iter().map(T::from_value).collect::<Result<_, _>>()?,
        })
    }
}

impl<T: Serialize> Serialize for Array2<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "dim".to_string(),
                Value::Seq(vec![
                    (self.rows as u64).to_value(),
                    (self.cols as u64).to_value(),
                ]),
            ),
            (
                "data".to_string(),
                Value::Seq(self.data.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

impl<T: Deserialize> Deserialize for Array2<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let dim: Vec<u64> = Deserialize::from_value(serde::get_field(value, "dim")?)?;
        if dim.len() != 2 {
            return Err(Error::custom("Array2 dim must have two entries"));
        }
        let seq = serde::get_field(value, "data")?
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence for Array2 data"))?;
        let (rows, cols) = (dim[0] as usize, dim[1] as usize);
        if seq.len() != rows * cols {
            return Err(Error::custom("Array2 data length mismatch"));
        }
        Ok(Array2 {
            rows,
            cols,
            data: seq.iter().map(T::from_value).collect::<Result<_, _>>()?,
        })
    }
}
