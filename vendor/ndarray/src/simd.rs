//! Runtime-dispatched SIMD kernel tier for the f64 inner loops.
//!
//! The GEMM/GEMV kernels in this crate ([`crate::Dot`]) and the
//! bit-packed binary-state kernels built on top of them
//! (`ember_core::kernels`) all reduce to four slice primitives:
//!
//! * [`dot`] — the four-accumulator unrolled dot product,
//! * [`dot4_rows`] — four dots sharing the right-hand vector (the gemv
//!   row loop, loop/reduce overhead amortized 4×),
//! * [`axpy`] — `o[i] += x · b[i]`,
//! * [`axpy4`] — four fused axpy updates in one pass over `o` (the
//!   transposed gemv's coefficient-row accumulation),
//! * [`add_assign`] — `o[i] += w[i]` (one selected-row add),
//! * [`sum_selected_rows`] — `o[j] += Σ w[idx][j]` (the whole
//!   selected-row accumulation, register-tiled),
//! * [`sum_selected_rows_block`] — its batched form over a transposed
//!   selection mask (≤ 64 output rows; the weight matrix streams once
//!   per block instead of once per row),
//! * [`block4_update`] — the blocked ikj GEMM's four-output-row update
//!   `oₜ[j] += aₜ · b[j]`.
//!
//! Each has three implementations: the **scalar reference** (the exact
//! loops this workspace shipped with — kept verbatim, they are the
//! bit-identity ground truth), an **AVX2** path (x86_64), and a **NEON**
//! path (aarch64). The tier is picked once per process by runtime
//! feature detection ([`active_tier`], cached in an atomic so the
//! per-call dispatch cost is one relaxed load), with automatic fallback
//! to scalar on hardware without the vector extension.
//!
//! # Bit-identity
//!
//! Every vector path performs **the same floating-point additions in
//! the same order per output element** as its scalar reference:
//!
//! * [`axpy`], [`axpy4`], [`add_assign`], and [`block4_update`] are
//!   element-wise — each output element sees `mul`+`add` pairs in a
//!   fixed order (never a fused multiply-add: Rust does not contract
//!   `a*b + c`, and the vector paths use separate multiply and add
//!   intrinsics to match). [`axpy4`]'s per-element chain is the
//!   sequential four-pass order, fused only across the passes over `o`.
//! * [`sum_selected_rows`] and [`sum_selected_rows_block`] keep each
//!   output element's addition chain in ascending selected-row order on
//!   every tier; the vector tiers only retile the loop *across*
//!   elements (register-held accumulators / transposed scatter) — see
//!   their docs.
//! * [`dot`]'s scalar reference already splits the reduction into four
//!   independent lane accumulators `s0..s3` combined as
//!   `(s0 + s1) + (s2 + s3)`; the AVX2 path holds exactly those four
//!   lanes in one vector accumulator (NEON: two two-lane accumulators)
//!   and reduces them in the same tree order, then handles the
//!   remainder scalar-style in ascending index order. [`dot4_rows`]
//!   gives each row its own accumulator set with that same tree — rows
//!   never mix.
//!
//! So switching tiers can never change a sampled bit — pinned by the
//! proptests in `ember_core` and the golden conformance fixtures.
//!
//! # Forcing the scalar tier
//!
//! Set `EMBER_FORCE_SCALAR=1` in the environment (read once, at first
//! dispatch) or call [`force_tier`]`(Some(SimdTier::Scalar))` at
//! runtime — used by the CI scalar job, the `bench_pr7` simd-vs-scalar
//! suite, and for debugging miscompares in the field.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation tier is executing the inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// The scalar reference loops (always available; bit-identity
    /// ground truth).
    Scalar,
    /// 256-bit AVX2 vectors, 4 × f64 lanes (x86_64).
    Avx2,
    /// 128-bit NEON vectors, 2 × f64 lanes (aarch64).
    Neon,
}

impl SimdTier {
    /// Stable lower-case name for logs and stat dumps.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> SimdTier {
        match v {
            1 => SimdTier::Avx2,
            2 => SimdTier::Neon,
            _ => SimdTier::Scalar,
        }
    }
}

/// Cached tier: `UNINIT` until the first dispatch resolves it.
static TIER: AtomicU8 = AtomicU8::new(UNINIT);
const UNINIT: u8 = u8::MAX;

/// What the hardware supports (ignoring overrides).
fn detect_hardware() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is baseline on AArch64.
        return SimdTier::Neon;
    }
    #[allow(unreachable_code)]
    SimdTier::Scalar
}

/// Detection + the `EMBER_FORCE_SCALAR` environment override.
fn detect() -> SimdTier {
    let forced = std::env::var_os("EMBER_FORCE_SCALAR").is_some_and(|v| v != "0" && !v.is_empty());
    if forced {
        SimdTier::Scalar
    } else {
        detect_hardware()
    }
}

/// The tier currently executing the inner loops. First call runs
/// feature detection (and reads `EMBER_FORCE_SCALAR`); later calls are
/// one relaxed atomic load.
#[inline]
pub fn active_tier() -> SimdTier {
    match TIER.load(Ordering::Relaxed) {
        UNINIT => {
            let tier = detect();
            TIER.store(tier as u8, Ordering::Relaxed);
            tier
        }
        v => SimdTier::from_u8(v),
    }
}

/// Overrides the dispatch tier at runtime. `Some(tier)` pins it (a
/// tier the hardware cannot run falls back to what detection picks);
/// `None` restores automatic detection (including the
/// `EMBER_FORCE_SCALAR` override). Both tiers produce bit-identical
/// results, so flipping this mid-run is always safe — it only changes
/// speed and the `simd_kernel_calls` accounting.
pub fn force_tier(tier: Option<SimdTier>) {
    let resolved = match tier {
        None => detect(),
        Some(SimdTier::Scalar) => SimdTier::Scalar,
        Some(requested) => {
            if requested == detect_hardware() {
                requested
            } else {
                detect()
            }
        }
    };
    TIER.store(resolved as u8, Ordering::Relaxed);
}

/// Whether the active tier is a vector tier (used by the substrate
/// backends' `simd_kernel_calls` accounting).
#[inline]
pub fn simd_active() -> bool {
    active_tier() != SimdTier::Scalar
}

// ---------------------------------------------------------------------------
// dot: four-accumulator unrolled dot product
// ---------------------------------------------------------------------------

/// Unrolled four-accumulator dot product — scalar reference tier.
///
/// FP addition is not associative, so the lane split is part of the
/// kernel's contract: `s = (s0 + s1) + (s2 + s3)`, remainder appended
/// in ascending index order. The vector tiers reproduce exactly this
/// shape.
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    // One vector accumulator whose lane l is exactly the scalar
    // reference's s_l (same products added in the same order).
    let mut acc = _mm256_setzero_pd();
    for c in 0..chunks {
        let x = _mm256_loadu_pd(a.as_ptr().add(4 * c));
        let y = _mm256_loadu_pd(b.as_ptr().add(4 * c));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(x, y));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    // The reference's reduction tree, verbatim.
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for i in 4 * chunks..a.len() {
        s += a[i] * b[i];
    }
    s
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_neon(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::aarch64::*;
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    // Two two-lane accumulators: acc01 holds (s0, s1), acc23 holds
    // (s2, s3) — the scalar reference's lanes, bit for bit.
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    for c in 0..chunks {
        let x01 = vld1q_f64(a.as_ptr().add(4 * c));
        let y01 = vld1q_f64(b.as_ptr().add(4 * c));
        let x23 = vld1q_f64(a.as_ptr().add(4 * c + 2));
        let y23 = vld1q_f64(b.as_ptr().add(4 * c + 2));
        acc01 = vaddq_f64(acc01, vmulq_f64(x01, y01));
        acc23 = vaddq_f64(acc23, vmulq_f64(x23, y23));
    }
    let (s0, s1) = (vgetq_lane_f64::<0>(acc01), vgetq_lane_f64::<1>(acc01));
    let (s2, s3) = (vgetq_lane_f64::<0>(acc23), vgetq_lane_f64::<1>(acc23));
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Dot product on the active tier (bit-identical across tiers).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { dot_avx2(a, b) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { dot_neon(a, b) },
        _ => dot_scalar(a, b),
    }
}

// ---------------------------------------------------------------------------
// dot4_rows: four independent dot products against one shared vector
// ---------------------------------------------------------------------------

/// Four dot products sharing the right-hand vector — scalar reference
/// tier. Each output is exactly [`dot_scalar`] of its row: the fusion
/// amortizes the pass over `x` (and, on the vector tiers, the loop and
/// horizontal-reduce overhead) across four rows but never mixes lanes
/// *across* rows, so every output keeps the reference reduction tree.
/// The gemv hot loop ([`crate::Array2::dot`] with a vector) runs on
/// this in blocks of four rows.
#[inline]
pub fn dot4_rows_scalar(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
    [
        dot_scalar(r0, x),
        dot_scalar(r1, x),
        dot_scalar(r2, x),
        dot_scalar(r3, x),
    ]
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot4_rows_avx2(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
    use std::arch::x86_64::*;
    let n = x.len();
    debug_assert!(r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n);
    let chunks = n / 4;
    // One accumulator per row; lane l of accumulator r is exactly
    // `dot_scalar(row_r, x)`'s s_l.
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    let mut a2 = _mm256_setzero_pd();
    let mut a3 = _mm256_setzero_pd();
    for c in 0..chunks {
        let xv = _mm256_loadu_pd(x.as_ptr().add(4 * c));
        a0 = _mm256_add_pd(
            a0,
            _mm256_mul_pd(_mm256_loadu_pd(r0.as_ptr().add(4 * c)), xv),
        );
        a1 = _mm256_add_pd(
            a1,
            _mm256_mul_pd(_mm256_loadu_pd(r1.as_ptr().add(4 * c)), xv),
        );
        a2 = _mm256_add_pd(
            a2,
            _mm256_mul_pd(_mm256_loadu_pd(r2.as_ptr().add(4 * c)), xv),
        );
        a3 = _mm256_add_pd(
            a3,
            _mm256_mul_pd(_mm256_loadu_pd(r3.as_ptr().add(4 * c)), xv),
        );
    }
    let rows = [r0, r1, r2, r3];
    let accs = [a0, a1, a2, a3];
    let mut out = [0.0f64; 4];
    for (t, acc) in accs.iter().enumerate() {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), *acc);
        // The reference's reduction tree, verbatim, then the ascending
        // remainder.
        let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for i in 4 * chunks..n {
            s += rows[t][i] * x[i];
        }
        out[t] = s;
    }
    out
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot4_rows_neon(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
    use std::arch::aarch64::*;
    let n = x.len();
    debug_assert!(r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n);
    let chunks = n / 4;
    // Per row: the same (s0,s1)/(s2,s3) accumulator pair as `dot_neon`.
    let mut acc = [[vdupq_n_f64(0.0); 2]; 4];
    let rows = [r0, r1, r2, r3];
    for c in 0..chunks {
        let x01 = vld1q_f64(x.as_ptr().add(4 * c));
        let x23 = vld1q_f64(x.as_ptr().add(4 * c + 2));
        for (t, row) in rows.iter().enumerate() {
            let r01 = vld1q_f64(row.as_ptr().add(4 * c));
            let r23 = vld1q_f64(row.as_ptr().add(4 * c + 2));
            acc[t][0] = vaddq_f64(acc[t][0], vmulq_f64(r01, x01));
            acc[t][1] = vaddq_f64(acc[t][1], vmulq_f64(r23, x23));
        }
    }
    let mut out = [0.0f64; 4];
    for (t, row) in rows.iter().enumerate() {
        let (s0, s1) = (
            vgetq_lane_f64::<0>(acc[t][0]),
            vgetq_lane_f64::<1>(acc[t][0]),
        );
        let (s2, s3) = (
            vgetq_lane_f64::<0>(acc[t][1]),
            vgetq_lane_f64::<1>(acc[t][1]),
        );
        let mut s = (s0 + s1) + (s2 + s3);
        for i in 4 * chunks..n {
            s += row[i] * x[i];
        }
        out[t] = s;
    }
    out
}

/// Four dot products sharing the right-hand vector, on the active tier.
/// Output `t` is bit-identical to `dot(row_t, x)` on every tier.
#[inline]
pub fn dot4_rows(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], x: &[f64]) -> [f64; 4] {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { dot4_rows_avx2(r0, r1, r2, r3, x) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { dot4_rows_neon(r0, r1, r2, r3, x) },
        _ => dot4_rows_scalar(r0, r1, r2, r3, x),
    }
}

// ---------------------------------------------------------------------------
// axpy: o += x * b
// ---------------------------------------------------------------------------

/// `o[i] += x · b[i]` — scalar reference tier.
#[inline]
pub fn axpy_scalar(o: &mut [f64], x: f64, b: &[f64]) {
    for (oi, &bi) in o.iter_mut().zip(b.iter()) {
        *oi += x * bi;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(o: &mut [f64], x: f64, b: &[f64]) {
    use std::arch::x86_64::*;
    let n = o.len().min(b.len());
    let chunks = n / 4;
    let xv = _mm256_set1_pd(x);
    for c in 0..chunks {
        let ov = _mm256_loadu_pd(o.as_ptr().add(4 * c));
        let bv = _mm256_loadu_pd(b.as_ptr().add(4 * c));
        // Separate mul + add (no FMA): matches the scalar `o += x*b`.
        _mm256_storeu_pd(
            o.as_mut_ptr().add(4 * c),
            _mm256_add_pd(ov, _mm256_mul_pd(xv, bv)),
        );
    }
    for i in 4 * chunks..n {
        o[i] += x * b[i];
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn axpy_neon(o: &mut [f64], x: f64, b: &[f64]) {
    use std::arch::aarch64::*;
    let n = o.len().min(b.len());
    let chunks = n / 2;
    let xv = vdupq_n_f64(x);
    for c in 0..chunks {
        let ov = vld1q_f64(o.as_ptr().add(2 * c));
        let bv = vld1q_f64(b.as_ptr().add(2 * c));
        vst1q_f64(o.as_mut_ptr().add(2 * c), vaddq_f64(ov, vmulq_f64(xv, bv)));
    }
    for i in 2 * chunks..n {
        o[i] += x * b[i];
    }
}

/// `o[i] += x · b[i]` on the active tier (bit-identical across tiers).
#[inline]
pub fn axpy(o: &mut [f64], x: f64, b: &[f64]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { axpy_avx2(o, x, b) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { axpy_neon(o, x, b) },
        _ => axpy_scalar(o, x, b),
    }
}

// ---------------------------------------------------------------------------
// axpy4: o += x0·b0 + x1·b1 + x2·b2 + x3·b3 in one pass
// ---------------------------------------------------------------------------

/// Four fused axpy updates — scalar reference tier. Per element the
/// additions happen in argument order,
/// `(((o + x0·b0) + x1·b1) + x2·b2) + x3·b3`, which is exactly what
/// four sequential [`axpy_scalar`] passes produce; the fusion only
/// saves the three intermediate passes over `o`. The transposed gemv
/// (`Wᵀ·v` accumulation over rows with non-zero coefficients) runs on
/// this in groups of four.
#[inline]
pub fn axpy4_scalar(o: &mut [f64], x: [f64; 4], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
    let n = o
        .len()
        .min(b0.len())
        .min(b1.len())
        .min(b2.len())
        .min(b3.len());
    for j in 0..n {
        let mut v = o[j];
        v += x[0] * b0[j];
        v += x[1] * b1[j];
        v += x[2] * b2[j];
        v += x[3] * b3[j];
        o[j] = v;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy4_avx2(o: &mut [f64], x: [f64; 4], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
    use std::arch::x86_64::*;
    let n = o
        .len()
        .min(b0.len())
        .min(b1.len())
        .min(b2.len())
        .min(b3.len());
    let chunks = n / 4;
    let x0 = _mm256_set1_pd(x[0]);
    let x1 = _mm256_set1_pd(x[1]);
    let x2 = _mm256_set1_pd(x[2]);
    let x3 = _mm256_set1_pd(x[3]);
    for c in 0..chunks {
        let mut ov = _mm256_loadu_pd(o.as_ptr().add(4 * c));
        // Element-wise, additions in argument order (no FMA): the
        // scalar reference chain, four lanes at a time.
        ov = _mm256_add_pd(
            ov,
            _mm256_mul_pd(x0, _mm256_loadu_pd(b0.as_ptr().add(4 * c))),
        );
        ov = _mm256_add_pd(
            ov,
            _mm256_mul_pd(x1, _mm256_loadu_pd(b1.as_ptr().add(4 * c))),
        );
        ov = _mm256_add_pd(
            ov,
            _mm256_mul_pd(x2, _mm256_loadu_pd(b2.as_ptr().add(4 * c))),
        );
        ov = _mm256_add_pd(
            ov,
            _mm256_mul_pd(x3, _mm256_loadu_pd(b3.as_ptr().add(4 * c))),
        );
        _mm256_storeu_pd(o.as_mut_ptr().add(4 * c), ov);
    }
    for j in 4 * chunks..n {
        let mut v = o[j];
        v += x[0] * b0[j];
        v += x[1] * b1[j];
        v += x[2] * b2[j];
        v += x[3] * b3[j];
        o[j] = v;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn axpy4_neon(o: &mut [f64], x: [f64; 4], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
    use std::arch::aarch64::*;
    let n = o
        .len()
        .min(b0.len())
        .min(b1.len())
        .min(b2.len())
        .min(b3.len());
    let chunks = n / 2;
    let x0 = vdupq_n_f64(x[0]);
    let x1 = vdupq_n_f64(x[1]);
    let x2 = vdupq_n_f64(x[2]);
    let x3 = vdupq_n_f64(x[3]);
    for c in 0..chunks {
        let mut ov = vld1q_f64(o.as_ptr().add(2 * c));
        ov = vaddq_f64(ov, vmulq_f64(x0, vld1q_f64(b0.as_ptr().add(2 * c))));
        ov = vaddq_f64(ov, vmulq_f64(x1, vld1q_f64(b1.as_ptr().add(2 * c))));
        ov = vaddq_f64(ov, vmulq_f64(x2, vld1q_f64(b2.as_ptr().add(2 * c))));
        ov = vaddq_f64(ov, vmulq_f64(x3, vld1q_f64(b3.as_ptr().add(2 * c))));
        vst1q_f64(o.as_mut_ptr().add(2 * c), ov);
    }
    for j in 2 * chunks..n {
        let mut v = o[j];
        v += x[0] * b0[j];
        v += x[1] * b1[j];
        v += x[2] * b2[j];
        v += x[3] * b3[j];
        o[j] = v;
    }
}

/// Four fused axpy updates on the active tier — bit-identical to four
/// sequential [`axpy`] calls on every tier.
#[inline]
pub fn axpy4(o: &mut [f64], x: [f64; 4], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { axpy4_avx2(o, x, b0, b1, b2, b3) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { axpy4_neon(o, x, b0, b1, b2, b3) },
        _ => axpy4_scalar(o, x, b0, b1, b2, b3),
    }
}

// ---------------------------------------------------------------------------
// add_assign: o += w (the bit-packed kernels' selected-row accumulation)
// ---------------------------------------------------------------------------

/// `o[i] += w[i]` — scalar reference tier.
#[inline]
pub fn add_assign_scalar(o: &mut [f64], w: &[f64]) {
    for (oi, &wi) in o.iter_mut().zip(w.iter()) {
        *oi += wi;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_avx2(o: &mut [f64], w: &[f64]) {
    use std::arch::x86_64::*;
    let n = o.len().min(w.len());
    let chunks = n / 4;
    for c in 0..chunks {
        let ov = _mm256_loadu_pd(o.as_ptr().add(4 * c));
        let wv = _mm256_loadu_pd(w.as_ptr().add(4 * c));
        _mm256_storeu_pd(o.as_mut_ptr().add(4 * c), _mm256_add_pd(ov, wv));
    }
    for i in 4 * chunks..n {
        o[i] += w[i];
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn add_assign_neon(o: &mut [f64], w: &[f64]) {
    use std::arch::aarch64::*;
    let n = o.len().min(w.len());
    let chunks = n / 2;
    for c in 0..chunks {
        let ov = vld1q_f64(o.as_ptr().add(2 * c));
        let wv = vld1q_f64(w.as_ptr().add(2 * c));
        vst1q_f64(o.as_mut_ptr().add(2 * c), vaddq_f64(ov, wv));
    }
    for i in 2 * chunks..n {
        o[i] += w[i];
    }
}

/// `o[i] += w[i]` on the active tier (bit-identical across tiers).
#[inline]
pub fn add_assign(o: &mut [f64], w: &[f64]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { add_assign_avx2(o, w) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { add_assign_neon(o, w) },
        _ => add_assign_scalar(o, w),
    }
}

// ---------------------------------------------------------------------------
// sum_selected_rows: register-tiled selected-row accumulation
// ---------------------------------------------------------------------------

/// `out[j] += Σ_k w[idx[k]][j]` — scalar reference tier: one
/// [`add_assign_scalar`] pass per selected row, ascending `idx` order
/// (the verbatim selected-row loop of the bit-packed kernels).
#[inline]
pub fn sum_selected_rows_scalar(out: &mut [f64], w: &[f64], stride: usize, idx: &[u32]) {
    let n = out.len();
    for &i in idx {
        let start = i as usize * stride;
        add_assign_scalar(out, &w[start..start + n]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_selected_rows_avx2(out: &mut [f64], w: &[f64], stride: usize, idx: &[u32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut j = 0;
    // 32-column register tile: eight accumulators stay in ymm registers
    // across the whole selected-row list, so the inner loop is pure
    // load+add on the weight stream — the per-row `o += w` formulation
    // is store-port bound reloading and rewriting the field for every
    // selected row; this one touches the field once per tile. The walk
    // is strided and the gaps between selected rows are data-dependent,
    // which defeats the hardware stride prefetcher — but the index list
    // gives the exact future addresses, so each step software-prefetches
    // the row `PF` entries ahead (two `T0` hints per 256-byte run; the
    // adjacent-line prefetcher fills the sibling lines).
    const PF: usize = 8;
    let last = idx.len() - 1;
    while j + 32 <= n {
        let p = out.as_mut_ptr().add(j);
        let mut a0 = _mm256_loadu_pd(p);
        let mut a1 = _mm256_loadu_pd(p.add(4));
        let mut a2 = _mm256_loadu_pd(p.add(8));
        let mut a3 = _mm256_loadu_pd(p.add(12));
        let mut a4 = _mm256_loadu_pd(p.add(16));
        let mut a5 = _mm256_loadu_pd(p.add(20));
        let mut a6 = _mm256_loadu_pd(p.add(24));
        let mut a7 = _mm256_loadu_pd(p.add(28));
        for t in 0..=last {
            let i = *idx.get_unchecked(t);
            let pf = *idx.get_unchecked((t + PF).min(last));
            let f = w.as_ptr().add(pf as usize * stride + j);
            _mm_prefetch(f.cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(f.add(16).cast::<i8>(), _MM_HINT_T0);
            let r = w.as_ptr().add(i as usize * stride + j);
            a0 = _mm256_add_pd(a0, _mm256_loadu_pd(r));
            a1 = _mm256_add_pd(a1, _mm256_loadu_pd(r.add(4)));
            a2 = _mm256_add_pd(a2, _mm256_loadu_pd(r.add(8)));
            a3 = _mm256_add_pd(a3, _mm256_loadu_pd(r.add(12)));
            a4 = _mm256_add_pd(a4, _mm256_loadu_pd(r.add(16)));
            a5 = _mm256_add_pd(a5, _mm256_loadu_pd(r.add(20)));
            a6 = _mm256_add_pd(a6, _mm256_loadu_pd(r.add(24)));
            a7 = _mm256_add_pd(a7, _mm256_loadu_pd(r.add(28)));
        }
        _mm256_storeu_pd(p, a0);
        _mm256_storeu_pd(p.add(4), a1);
        _mm256_storeu_pd(p.add(8), a2);
        _mm256_storeu_pd(p.add(12), a3);
        _mm256_storeu_pd(p.add(16), a4);
        _mm256_storeu_pd(p.add(20), a5);
        _mm256_storeu_pd(p.add(24), a6);
        _mm256_storeu_pd(p.add(28), a7);
        j += 32;
    }
    while j + 4 <= n {
        let p = out.as_mut_ptr().add(j);
        let mut a0 = _mm256_loadu_pd(p);
        for t in 0..=last {
            let i = *idx.get_unchecked(t);
            let pf = *idx.get_unchecked((t + PF).min(last));
            _mm_prefetch(
                w.as_ptr().add(pf as usize * stride + j).cast::<i8>(),
                _MM_HINT_T0,
            );
            a0 = _mm256_add_pd(a0, _mm256_loadu_pd(w.as_ptr().add(i as usize * stride + j)));
        }
        _mm256_storeu_pd(p, a0);
        j += 4;
    }
    while j < n {
        let mut acc = *out.get_unchecked(j);
        for &i in idx {
            acc += *w.get_unchecked(i as usize * stride + j);
        }
        *out.get_unchecked_mut(j) = acc;
        j += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn sum_selected_rows_neon(out: &mut [f64], w: &[f64], stride: usize, idx: &[u32]) {
    use std::arch::aarch64::*;
    let n = out.len();
    let mut j = 0;
    // 8-column register tile: four two-lane accumulators.
    while j + 8 <= n {
        let p = out.as_mut_ptr().add(j);
        let mut a0 = vld1q_f64(p);
        let mut a1 = vld1q_f64(p.add(2));
        let mut a2 = vld1q_f64(p.add(4));
        let mut a3 = vld1q_f64(p.add(6));
        for &i in idx {
            let r = w.as_ptr().add(i as usize * stride + j);
            a0 = vaddq_f64(a0, vld1q_f64(r));
            a1 = vaddq_f64(a1, vld1q_f64(r.add(2)));
            a2 = vaddq_f64(a2, vld1q_f64(r.add(4)));
            a3 = vaddq_f64(a3, vld1q_f64(r.add(6)));
        }
        vst1q_f64(p, a0);
        vst1q_f64(p.add(2), a1);
        vst1q_f64(p.add(4), a2);
        vst1q_f64(p.add(6), a3);
        j += 8;
    }
    while j + 2 <= n {
        let p = out.as_mut_ptr().add(j);
        let mut a0 = vld1q_f64(p);
        for &i in idx {
            a0 = vaddq_f64(a0, vld1q_f64(w.as_ptr().add(i as usize * stride + j)));
        }
        vst1q_f64(p, a0);
        j += 2;
    }
    while j < n {
        let mut acc = *out.get_unchecked(j);
        for &i in idx {
            acc += *w.get_unchecked(i as usize * stride + j);
        }
        *out.get_unchecked_mut(j) = acc;
        j += 1;
    }
}

/// `out[j] += Σ_k w[idx[k]][j]` on the active tier — the hot loop of
/// the bit-packed GEMM and the serial per-chain field kernel: the
/// weight rows selected by the set input bits, accumulated onto `out`
/// in ascending `idx` order starting from `out`'s current contents.
///
/// Bit-identical across tiers: per output element `j` every tier
/// computes `((out[j] + w[idx[0]][j]) + w[idx[1]][j]) + …` in exactly
/// that order — the vector tiers only reorder *across* elements
/// (register tiles instead of per-row passes), never within one
/// element's chain.
///
/// `w` is a row-major matrix with `stride` elements per row, of which
/// the first `out.len()` are summed.
///
/// # Panics
///
/// Panics if `stride < out.len()` or any selected row overruns `w`.
#[inline]
pub fn sum_selected_rows(out: &mut [f64], w: &[f64], stride: usize, idx: &[u32]) {
    let n = out.len();
    assert!(stride >= n, "row stride shorter than the output tile");
    if let Some(&max) = idx.iter().max() {
        assert!(
            max as usize * stride + n <= w.len(),
            "selected row {max} overruns the weight matrix"
        );
    } else {
        return;
    }
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { sum_selected_rows_avx2(out, w, stride, idx) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { sum_selected_rows_neon(out, w, stride, idx) },
        _ => sum_selected_rows_scalar(out, w, stride, idx),
    }
}

// ---------------------------------------------------------------------------
// sum_selected_rows_block: batched selected-row accumulation over a
// transposed selection mask (≤ 64 output rows per call)
// ---------------------------------------------------------------------------

/// `out[r][j] += Σ_{i : tmask[i] bit r} w[i][j]` — scalar reference
/// tier. Weight rows stream in ascending `i`; within a weight row the
/// destinations are visited in ascending `r`, so each output element's
/// addition chain is exactly the ascending-`i` chain of the per-row
/// formulation ([`sum_selected_rows_scalar`]).
#[inline]
pub fn sum_selected_rows_block_scalar(out: &mut [f64], n: usize, w: &[f64], tmask: &[u64]) {
    for (i, &mask) in tmask.iter().enumerate() {
        let wrow = &w[i * n..(i + 1) * n];
        let mut bits = mask;
        while bits != 0 {
            let r = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            add_assign_scalar(&mut out[r * n..(r + 1) * n], wrow);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_selected_rows_block_avx2(out: &mut [f64], n: usize, w: &[f64], tmask: &[u64]) {
    use std::arch::x86_64::*;
    let mut j = 0;
    // Column tiles keep the whole ≤ 64-row output block L1-resident
    // (64 rows × 32 cols × 8 B = 16 KB) while the weight matrix streams
    // through exactly once, in order — each weight-row tile is loaded
    // into eight ymm registers once and added to every destination row
    // its mask selects. The per-batch-row formulation re-streams the
    // matrix from L2 once per row; this one pays L2 for it once per
    // 64-row block.
    while j + 32 <= n {
        for (i, &mask) in tmask.iter().enumerate() {
            if mask == 0 {
                continue;
            }
            let r = w.as_ptr().add(i * n + j);
            let w0 = _mm256_loadu_pd(r);
            let w1 = _mm256_loadu_pd(r.add(4));
            let w2 = _mm256_loadu_pd(r.add(8));
            let w3 = _mm256_loadu_pd(r.add(12));
            let w4 = _mm256_loadu_pd(r.add(16));
            let w5 = _mm256_loadu_pd(r.add(20));
            let w6 = _mm256_loadu_pd(r.add(24));
            let w7 = _mm256_loadu_pd(r.add(28));
            let mut bits = mask;
            while bits != 0 {
                let row = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let p = out.as_mut_ptr().add(row * n + j);
                _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), w0));
                _mm256_storeu_pd(p.add(4), _mm256_add_pd(_mm256_loadu_pd(p.add(4)), w1));
                _mm256_storeu_pd(p.add(8), _mm256_add_pd(_mm256_loadu_pd(p.add(8)), w2));
                _mm256_storeu_pd(p.add(12), _mm256_add_pd(_mm256_loadu_pd(p.add(12)), w3));
                _mm256_storeu_pd(p.add(16), _mm256_add_pd(_mm256_loadu_pd(p.add(16)), w4));
                _mm256_storeu_pd(p.add(20), _mm256_add_pd(_mm256_loadu_pd(p.add(20)), w5));
                _mm256_storeu_pd(p.add(24), _mm256_add_pd(_mm256_loadu_pd(p.add(24)), w6));
                _mm256_storeu_pd(p.add(28), _mm256_add_pd(_mm256_loadu_pd(p.add(28)), w7));
            }
        }
        j += 32;
    }
    while j + 4 <= n {
        for (i, &mask) in tmask.iter().enumerate() {
            if mask == 0 {
                continue;
            }
            let w0 = _mm256_loadu_pd(w.as_ptr().add(i * n + j));
            let mut bits = mask;
            while bits != 0 {
                let row = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let p = out.as_mut_ptr().add(row * n + j);
                _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), w0));
            }
        }
        j += 4;
    }
    while j < n {
        for (i, &mask) in tmask.iter().enumerate() {
            let w0 = *w.get_unchecked(i * n + j);
            let mut bits = mask;
            while bits != 0 {
                let row = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                *out.get_unchecked_mut(row * n + j) += w0;
            }
        }
        j += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn sum_selected_rows_block_neon(out: &mut [f64], n: usize, w: &[f64], tmask: &[u64]) {
    use std::arch::aarch64::*;
    let mut j = 0;
    // 16-column tile: eight two-lane weight registers per weight row.
    while j + 16 <= n {
        for (i, &mask) in tmask.iter().enumerate() {
            if mask == 0 {
                continue;
            }
            let r = w.as_ptr().add(i * n + j);
            let w0 = vld1q_f64(r);
            let w1 = vld1q_f64(r.add(2));
            let w2 = vld1q_f64(r.add(4));
            let w3 = vld1q_f64(r.add(6));
            let w4 = vld1q_f64(r.add(8));
            let w5 = vld1q_f64(r.add(10));
            let w6 = vld1q_f64(r.add(12));
            let w7 = vld1q_f64(r.add(14));
            let mut bits = mask;
            while bits != 0 {
                let row = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let p = out.as_mut_ptr().add(row * n + j);
                vst1q_f64(p, vaddq_f64(vld1q_f64(p), w0));
                vst1q_f64(p.add(2), vaddq_f64(vld1q_f64(p.add(2)), w1));
                vst1q_f64(p.add(4), vaddq_f64(vld1q_f64(p.add(4)), w2));
                vst1q_f64(p.add(6), vaddq_f64(vld1q_f64(p.add(6)), w3));
                vst1q_f64(p.add(8), vaddq_f64(vld1q_f64(p.add(8)), w4));
                vst1q_f64(p.add(10), vaddq_f64(vld1q_f64(p.add(10)), w5));
                vst1q_f64(p.add(12), vaddq_f64(vld1q_f64(p.add(12)), w6));
                vst1q_f64(p.add(14), vaddq_f64(vld1q_f64(p.add(14)), w7));
            }
        }
        j += 16;
    }
    while j + 2 <= n {
        for (i, &mask) in tmask.iter().enumerate() {
            if mask == 0 {
                continue;
            }
            let w0 = vld1q_f64(w.as_ptr().add(i * n + j));
            let mut bits = mask;
            while bits != 0 {
                let row = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let p = out.as_mut_ptr().add(row * n + j);
                vst1q_f64(p, vaddq_f64(vld1q_f64(p), w0));
            }
        }
        j += 2;
    }
    while j < n {
        for (i, &mask) in tmask.iter().enumerate() {
            let w0 = *w.get_unchecked(i * n + j);
            let mut bits = mask;
            while bits != 0 {
                let row = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                *out.get_unchecked_mut(row * n + j) += w0;
            }
        }
        j += 1;
    }
}

/// Batched [`sum_selected_rows`] over a **transposed** selection mask,
/// on the active tier: `out` holds up to 64 contiguous `n`-wide output
/// rows, and bit `r` of `tmask[i]` selects weight row `i` into output
/// row `r`. Both `out` and `w` are dense row-major with row length `n`.
///
/// This is the bit-packed batch GEMM's hot loop. The per-batch-row
/// formulation streams the whole weight matrix from L2 once per batch
/// row (memory-bound: the matrix rarely fits L1); transposing the
/// selection lets every weight row be loaded once per 64-row block and
/// scattered to all the output rows that selected it, with the output
/// block held L1-resident by column tiling.
///
/// Bit-identical across tiers and to the per-row formulation: weight
/// rows are visited in ascending `i`, so each output element's addition
/// chain is the same ascending-index chain — the transposition reorders
/// work only *across* output rows, never within one element's chain.
///
/// # Panics
///
/// Panics if `w` is shorter than `tmask.len() · n`, or if any mask
/// selects an output row beyond `out`.
#[inline]
pub fn sum_selected_rows_block(out: &mut [f64], n: usize, w: &[f64], tmask: &[u64]) {
    if n == 0 {
        return;
    }
    assert!(
        tmask.len() * n <= w.len(),
        "selection mask overruns the weight matrix"
    );
    let union = tmask.iter().fold(0u64, |u, &m| u | m);
    if union == 0 {
        return;
    }
    let top_row = 63 - union.leading_zeros() as usize;
    assert!(
        (top_row + 1) * n <= out.len(),
        "selected output row {top_row} overruns the output block"
    );
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { sum_selected_rows_block_avx2(out, n, w, tmask) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { sum_selected_rows_block_neon(out, n, w, tmask) },
        _ => sum_selected_rows_block_scalar(out, n, w, tmask),
    }
}

// ---------------------------------------------------------------------------
// block4_update: the blocked ikj GEMM's four-output-row inner loop
// ---------------------------------------------------------------------------

/// `oₜ[j] += aₜ · b[j]` for four output rows sharing one streamed B row
/// — scalar reference tier.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn block4_update_scalar(
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
    a0: f64,
    a1: f64,
    a2: f64,
    a3: f64,
    brow: &[f64],
) {
    for (((b_, q0), q1), (q2, q3)) in brow
        .iter()
        .zip(o0.iter_mut())
        .zip(o1.iter_mut())
        .zip(o2.iter_mut().zip(o3.iter_mut()))
    {
        *q0 += a0 * b_;
        *q1 += a1 * b_;
        *q2 += a2 * b_;
        *q3 += a3 * b_;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn block4_update_avx2(
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
    a0: f64,
    a1: f64,
    a2: f64,
    a3: f64,
    brow: &[f64],
) {
    use std::arch::x86_64::*;
    let n = brow.len();
    let chunks = n / 4;
    let (v0, v1) = (_mm256_set1_pd(a0), _mm256_set1_pd(a1));
    let (v2, v3) = (_mm256_set1_pd(a2), _mm256_set1_pd(a3));
    for c in 0..chunks {
        let bv = _mm256_loadu_pd(brow.as_ptr().add(4 * c));
        let q0 = _mm256_loadu_pd(o0.as_ptr().add(4 * c));
        let q1 = _mm256_loadu_pd(o1.as_ptr().add(4 * c));
        let q2 = _mm256_loadu_pd(o2.as_ptr().add(4 * c));
        let q3 = _mm256_loadu_pd(o3.as_ptr().add(4 * c));
        _mm256_storeu_pd(
            o0.as_mut_ptr().add(4 * c),
            _mm256_add_pd(q0, _mm256_mul_pd(v0, bv)),
        );
        _mm256_storeu_pd(
            o1.as_mut_ptr().add(4 * c),
            _mm256_add_pd(q1, _mm256_mul_pd(v1, bv)),
        );
        _mm256_storeu_pd(
            o2.as_mut_ptr().add(4 * c),
            _mm256_add_pd(q2, _mm256_mul_pd(v2, bv)),
        );
        _mm256_storeu_pd(
            o3.as_mut_ptr().add(4 * c),
            _mm256_add_pd(q3, _mm256_mul_pd(v3, bv)),
        );
    }
    for i in 4 * chunks..n {
        let b_ = brow[i];
        o0[i] += a0 * b_;
        o1[i] += a1 * b_;
        o2[i] += a2 * b_;
        o3[i] += a3 * b_;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)]
unsafe fn block4_update_neon(
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
    a0: f64,
    a1: f64,
    a2: f64,
    a3: f64,
    brow: &[f64],
) {
    use std::arch::aarch64::*;
    let n = brow.len();
    let chunks = n / 2;
    let (v0, v1) = (vdupq_n_f64(a0), vdupq_n_f64(a1));
    let (v2, v3) = (vdupq_n_f64(a2), vdupq_n_f64(a3));
    for c in 0..chunks {
        let bv = vld1q_f64(brow.as_ptr().add(2 * c));
        let q0 = vld1q_f64(o0.as_ptr().add(2 * c));
        let q1 = vld1q_f64(o1.as_ptr().add(2 * c));
        let q2 = vld1q_f64(o2.as_ptr().add(2 * c));
        let q3 = vld1q_f64(o3.as_ptr().add(2 * c));
        vst1q_f64(o0.as_mut_ptr().add(2 * c), vaddq_f64(q0, vmulq_f64(v0, bv)));
        vst1q_f64(o1.as_mut_ptr().add(2 * c), vaddq_f64(q1, vmulq_f64(v1, bv)));
        vst1q_f64(o2.as_mut_ptr().add(2 * c), vaddq_f64(q2, vmulq_f64(v2, bv)));
        vst1q_f64(o3.as_mut_ptr().add(2 * c), vaddq_f64(q3, vmulq_f64(v3, bv)));
    }
    for i in 2 * chunks..n {
        let b_ = brow[i];
        o0[i] += a0 * b_;
        o1[i] += a1 * b_;
        o2[i] += a2 * b_;
        o3[i] += a3 * b_;
    }
}

/// Four-output-row ikj update on the active tier (bit-identical across
/// tiers; each output element sees exactly one mul + one add).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn block4_update(
    o0: &mut [f64],
    o1: &mut [f64],
    o2: &mut [f64],
    o3: &mut [f64],
    a0: f64,
    a1: f64,
    a2: f64,
    a3: f64,
    brow: &[f64],
) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { block4_update_avx2(o0, o1, o2, o3, a0, a1, a2, a3, brow) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { block4_update_neon(o0, o1, o2, o3, a0, a1, a2, a3, brow) },
        _ => block4_update_scalar(o0, o1, o2, o3, a0, a1, a2, a3, brow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: f64) -> Vec<f64> {
        // Deterministic awkward values: irrational-ish magnitudes whose
        // sums are order-sensitive, so any reassociation shows up.
        (0..n)
            .map(|i| ((i as f64) * 0.7310585 + salt).sin() * 3.25)
            .collect()
    }

    #[test]
    fn detection_is_cached_and_consistent() {
        let t0 = active_tier();
        let t1 = active_tier();
        assert_eq!(t0, t1);
        assert!(!t0.name().is_empty());
    }

    #[test]
    fn force_tier_round_trips() {
        let auto = active_tier();
        force_tier(Some(SimdTier::Scalar));
        assert_eq!(active_tier(), SimdTier::Scalar);
        force_tier(None);
        assert_eq!(active_tier(), detect());
        // Forcing an unsupported vector tier falls back to detection.
        force_tier(Some(if cfg!(target_arch = "x86_64") {
            SimdTier::Neon
        } else {
            SimdTier::Avx2
        }));
        assert_eq!(active_tier(), detect());
        force_tier(None);
        let _ = auto;
    }

    #[test]
    fn dot_matches_scalar_bitwise_at_odd_lengths() {
        for n in [0, 1, 3, 4, 5, 7, 8, 63, 64, 65, 127, 200] {
            let a = seq(n, 0.1);
            let b = seq(n, 2.7);
            let fast = dot(&a, &b);
            let slow = dot_scalar(&a, &b);
            assert_eq!(fast.to_bits(), slow.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_bitwise_at_odd_lengths() {
        for n in [0, 1, 2, 5, 63, 65, 127] {
            let b = seq(n, 1.3);
            let mut fast = seq(n, 4.2);
            let mut slow = fast.clone();
            axpy(&mut fast, -1.76943, &b);
            axpy_scalar(&mut slow, -1.76943, &b);
            let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "n = {n}");
        }
    }

    #[test]
    fn dot4_rows_matches_per_row_dot_bitwise() {
        for n in [0, 1, 3, 4, 5, 31, 32, 33, 63, 65, 127, 200] {
            let rows: Vec<Vec<f64>> = (0..4).map(|t| seq(n, 0.3 + t as f64)).collect();
            let x = seq(n, 5.9);
            let quad = dot4_rows(&rows[0], &rows[1], &rows[2], &rows[3], &x);
            for (t, row) in rows.iter().enumerate() {
                let single = dot(row, &x);
                assert_eq!(quad[t].to_bits(), single.to_bits(), "n = {n}, row {t}");
                let slow = dot_scalar(row, &x);
                assert_eq!(
                    quad[t].to_bits(),
                    slow.to_bits(),
                    "n = {n}, row {t} (scalar)"
                );
            }
        }
    }

    #[test]
    fn axpy4_matches_four_sequential_axpy_bitwise() {
        for n in [0, 1, 3, 4, 5, 31, 33, 63, 65, 127, 200] {
            let bs: Vec<Vec<f64>> = (0..4).map(|t| seq(n, 1.1 + t as f64)).collect();
            let xs = [-1.76943, 0.412, 3.0625, -0.0071];
            let mut fused = seq(n, 7.3);
            let mut sequential = fused.clone();
            axpy4(&mut fused, xs, &bs[0], &bs[1], &bs[2], &bs[3]);
            for (x, b) in xs.iter().zip(bs.iter()) {
                axpy_scalar(&mut sequential, *x, b);
            }
            let fused_bits: Vec<u64> = fused.iter().map(|x| x.to_bits()).collect();
            let seq_bits: Vec<u64> = sequential.iter().map(|x| x.to_bits()).collect();
            assert_eq!(fused_bits, seq_bits, "n = {n}");
        }
    }

    #[test]
    fn add_assign_matches_scalar_bitwise_at_odd_lengths() {
        for n in [0, 1, 2, 5, 63, 65, 127] {
            let w = seq(n, 0.9);
            let mut fast = seq(n, 6.1);
            let mut slow = fast.clone();
            add_assign(&mut fast, &w);
            add_assign_scalar(&mut slow, &w);
            let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "n = {n}");
        }
    }

    #[test]
    fn sum_selected_rows_matches_scalar_bitwise() {
        // Widths straddling the 16/4-column AVX2 tiles (8/2 NEON) and
        // row lists of every size including empty.
        for n in [0usize, 1, 3, 4, 5, 15, 16, 17, 63, 65, 127] {
            let stride = n + 3; // padded rows: stride > out width
            let rows = 9;
            let w = seq(rows * stride, 1.7);
            for pick in 0..4u32 {
                let idx: Vec<u32> = (0..rows as u32).filter(|i| (i + pick) % 3 != 0).collect();
                let mut fast = seq(n, 0.4);
                let mut slow = fast.clone();
                sum_selected_rows(&mut fast, &w, stride, &idx);
                sum_selected_rows_scalar(&mut slow, &w, stride, &idx);
                let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
                let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
                assert_eq!(fast_bits, slow_bits, "n = {n}, pick = {pick}");
            }
        }
    }

    #[test]
    fn sum_selected_rows_block_matches_scalar_and_per_row_bitwise() {
        // Widths straddling the 32/4-column AVX2 tiles (16/2 NEON),
        // weight-row counts straddling the mask width, and batch sizes
        // up to the full 64-row block.
        for n in [0usize, 1, 3, 4, 5, 31, 32, 33, 63, 65, 127] {
            for &(fan_in, batch) in &[(7usize, 1usize), (13, 5), (40, 64), (3, 33)] {
                let w = seq(fan_in * n.max(1), 0.9);
                // Deterministic ragged selection pattern.
                let tmask: Vec<u64> = (0..fan_in)
                    .map(|i| {
                        let mut m = 0u64;
                        for r in 0..batch {
                            if (i * 31 + r * 17 + n) % 3 != 0 {
                                m |= 1 << r;
                            }
                        }
                        m
                    })
                    .collect();
                let mut fast = seq(batch * n, 0.2);
                let mut slow = fast.clone();
                let mut per_row = fast.clone();
                sum_selected_rows_block(&mut fast, n, &w, &tmask);
                sum_selected_rows_block_scalar(&mut slow, n, &w, &tmask);
                for r in 0..batch {
                    let idx: Vec<u32> = (0..fan_in as u32)
                        .filter(|&i| tmask[i as usize] >> r & 1 == 1)
                        .collect();
                    if n > 0 {
                        sum_selected_rows(&mut per_row[r * n..(r + 1) * n], &w, n, &idx);
                    }
                }
                let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
                let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
                let row_bits: Vec<u64> = per_row.iter().map(|x| x.to_bits()).collect();
                assert_eq!(fast_bits, slow_bits, "n = {n}, batch = {batch}");
                assert_eq!(fast_bits, row_bits, "n = {n}, batch = {batch} (per-row)");
            }
        }
    }

    #[test]
    fn block4_update_matches_scalar_bitwise_at_odd_lengths() {
        for n in [0, 1, 3, 5, 63, 65, 127] {
            let brow = seq(n, 2.2);
            let mut fast: Vec<Vec<f64>> = (0..4).map(|t| seq(n, t as f64)).collect();
            let mut slow = fast.clone();
            let (a0, a1, a2, a3) = (0.37, -1.11, 2.9041, -0.0007);
            {
                let (f0, rest) = fast.split_at_mut(1);
                let (f1, rest) = rest.split_at_mut(1);
                let (f2, f3) = rest.split_at_mut(1);
                block4_update(
                    &mut f0[0], &mut f1[0], &mut f2[0], &mut f3[0], a0, a1, a2, a3, &brow,
                );
            }
            {
                let (s0, rest) = slow.split_at_mut(1);
                let (s1, rest) = rest.split_at_mut(1);
                let (s2, s3) = rest.split_at_mut(1);
                block4_update_scalar(
                    &mut s0[0], &mut s1[0], &mut s2[0], &mut s3[0], a0, a1, a2, a3, &brow,
                );
            }
            for t in 0..4 {
                let fast_bits: Vec<u64> = fast[t].iter().map(|x| x.to_bits()).collect();
                let slow_bits: Vec<u64> = slow[t].iter().map(|x| x.to_bits()).collect();
                assert_eq!(fast_bits, slow_bits, "n = {n}, row {t}");
            }
        }
    }
}
