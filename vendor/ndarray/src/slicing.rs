//! The [`s!`] slice-spec macro and its supporting range trait.

/// A 1-D slice specification: any standard range over `usize`.
pub trait SliceArg1 {
    /// Resolves to concrete `(start, end)` bounds for a given length.
    fn bounds(self, len: usize) -> (usize, usize);
}

impl SliceArg1 for std::ops::Range<usize> {
    fn bounds(self, len: usize) -> (usize, usize) {
        assert!(
            self.start <= self.end && self.end <= len,
            "slice out of bounds"
        );
        (self.start, self.end)
    }
}

impl SliceArg1 for std::ops::RangeFrom<usize> {
    fn bounds(self, len: usize) -> (usize, usize) {
        assert!(self.start <= len, "slice out of bounds");
        (self.start, len)
    }
}

impl SliceArg1 for std::ops::RangeTo<usize> {
    fn bounds(self, len: usize) -> (usize, usize) {
        assert!(self.end <= len, "slice out of bounds");
        (0, self.end)
    }
}

impl SliceArg1 for std::ops::RangeInclusive<usize> {
    fn bounds(self, len: usize) -> (usize, usize) {
        let (a, b) = (*self.start(), *self.end() + 1);
        assert!(a <= b && b <= len, "slice out of bounds");
        (a, b)
    }
}

impl SliceArg1 for std::ops::RangeFull {
    fn bounds(self, len: usize) -> (usize, usize) {
        (0, len)
    }
}

/// Slice-spec constructor: `s![a..b]` for 1-D, `s![a..b, ..]` for 2-D.
#[macro_export]
macro_rules! s {
    ($a:expr) => {
        $a
    };
    ($a:expr, $b:expr) => {
        ($a, $b)
    };
}
