//! Offline vendored subset of the `ndarray` API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the array slice it uses: [`Array1`]/[`Array2`] owning
//! row-major storage, lightweight [`ArrayView1`]/[`ArrayView2`] (strided
//! 1-D, transpose-aware 2-D), elementwise arithmetic with scalar
//! broadcast, and cache-friendly `dot` kernels (vec·vec, GEMV, GEMM with
//! transpose-specialized loops). Everything numeric is `f64` — the only
//! element type the workspace stores.
//!
//! Known divergence from upstream: [`Array2::rows`] returns a type that
//! is itself an [`Iterator`] (upstream's `Lanes` is only
//! `IntoIterator`), so call sites here chain `.map(..)` directly.
//! When/if the real crates.io `ndarray` returns, those call sites need
//! `.into_iter()` restored.

mod ops;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod simd;
mod slicing;

pub use ops::{MatOperand, VecOperand};
pub use slicing::SliceArg1;

/// An axis index: `Axis(0)` = rows, `Axis(1)` = columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Axis(pub usize);

// ---------------------------------------------------------------------------
// Owned arrays
// ---------------------------------------------------------------------------

/// A 1-D owned array.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Array1<T> {
    pub(crate) data: Vec<T>,
}

/// A 2-D owned array in row-major layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Array2<T> {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) data: Vec<T>,
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

/// A strided read-only 1-D view (stride in elements).
#[derive(Debug)]
pub struct ArrayView1<'a, T> {
    pub(crate) data: &'a [T],
    pub(crate) stride: usize,
    pub(crate) len: usize,
}

/// A contiguous mutable 1-D view.
#[derive(Debug)]
pub struct ArrayViewMut1<'a, T> {
    pub(crate) data: &'a mut [T],
}

/// A read-only 2-D view over row-major storage; `trans` marks a lazily
/// transposed view (as produced by [`Array2::t`]).
#[derive(Debug)]
pub struct ArrayView2<'a, T> {
    pub(crate) data: &'a [T],
    pub(crate) phys_rows: usize,
    pub(crate) phys_cols: usize,
    pub(crate) trans: bool,
}

impl<T> Clone for ArrayView1<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArrayView1<'_, T> {}

impl<T: PartialEq> PartialEq for ArrayView1<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: PartialEq> PartialEq<Array1<T>> for ArrayView1<'_, T> {
    fn eq(&self, other: &Array1<T>) -> bool {
        self.len == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: PartialEq> PartialEq<ArrayView1<'_, T>> for Array1<T> {
    fn eq(&self, other: &ArrayView1<'_, T>) -> bool {
        other == self
    }
}

impl<T> Clone for ArrayView2<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArrayView2<'_, T> {}

// ---------------------------------------------------------------------------
// Array1
// ---------------------------------------------------------------------------

impl<T> Array1<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The length (mirrors `Array2::dim`).
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Element iterator.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable element iterator.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Underlying contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Underlying contiguous slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Builds from an existing `Vec`.
    pub fn from_vec(data: Vec<T>) -> Self {
        Array1 { data }
    }

    /// Builds from an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Array1 {
            data: iter.into_iter().collect(),
        }
    }

    /// Builds by evaluating `f` at each index.
    pub fn from_shape_fn<F: FnMut(usize) -> T>(len: usize, mut f: F) -> Self {
        Array1 {
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Read-only view of the whole array.
    pub fn view(&self) -> ArrayView1<'_, T> {
        ArrayView1 {
            data: &self.data,
            stride: 1,
            len: self.data.len(),
        }
    }

    /// Strided slice view; see the [`s!`] macro.
    pub fn slice<S: SliceArg1>(&self, spec: S) -> ArrayView1<'_, T> {
        let (start, end) = spec.bounds(self.data.len());
        ArrayView1 {
            data: &self.data[start..end],
            stride: 1,
            len: end - start,
        }
    }

    /// Maps every element through `f` into a new array.
    pub fn mapv<U, F: FnMut(T) -> U>(&self, mut f: F) -> Array1<U>
    where
        T: Clone,
    {
        Array1 {
            data: self.data.iter().map(|x| f(x.clone())).collect(),
        }
    }

    /// Maps every element in place.
    pub fn mapv_inplace<F: FnMut(T) -> T>(&mut self, mut f: F)
    where
        T: Clone,
    {
        for x in self.data.iter_mut() {
            *x = f(x.clone());
        }
    }

    /// Overwrites every element with `value`.
    pub fn fill(&mut self, value: T)
    where
        T: Clone,
    {
        for x in self.data.iter_mut() {
            *x = value.clone();
        }
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn assign<S: VecOperand>(&mut self, other: &S)
    where
        T: From<f64>,
    {
        let len = other.vlen().expect("assign needs an array source");
        assert_eq!(self.len(), len, "assign length mismatch");
        for (i, x) in self.data.iter_mut().enumerate() {
            *x = T::from(other.vget(i));
        }
    }
}

impl Array1<f64> {
    /// An all-zero array.
    pub fn zeros(len: usize) -> Self {
        Array1 {
            data: vec![0.0; len],
        }
    }

    /// An all-one array.
    pub fn ones(len: usize) -> Self {
        Array1 {
            data: vec![1.0; len],
        }
    }

    /// An array filled with `value`.
    pub fn from_elem(len: usize, value: f64) -> Self {
        Array1 {
            data: vec![value; len],
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.sum() / self.data.len() as f64)
        }
    }

    /// Standard deviation with `ddof` delta degrees of freedom.
    pub fn std(&self, ddof: f64) -> f64 {
        std_of(&self.data, ddof)
    }

    /// Dot product / matrix product dispatch (see [`Dot`]).
    pub fn dot<Rhs>(&self, rhs: &Rhs) -> <Self as Dot<Rhs>>::Output
    where
        Self: Dot<Rhs>,
    {
        self.dot_impl(rhs)
    }
}

impl<T> std::ops::Index<usize> for Array1<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> std::ops::IndexMut<usize> for Array1<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T> FromIterator<T> for Array1<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Array1 {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a, T> IntoIterator for &'a Array1<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

// ---------------------------------------------------------------------------
// Array2
// ---------------------------------------------------------------------------

impl<T> Array2<T> {
    /// `(rows, cols)`.
    pub fn dim(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major element iterator.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable row-major element iterator.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Underlying contiguous row-major slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Builds by evaluating `f` at each `(row, col)` index.
    pub fn from_shape_fn<F: FnMut((usize, usize)) -> T>(dim: (usize, usize), mut f: F) -> Self {
        let (rows, cols) = dim;
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f((i, j)));
            }
        }
        Array2 { rows, cols, data }
    }

    /// Builds from a row-major `Vec`.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `data.len() != rows * cols`.
    pub fn from_shape_vec(dim: (usize, usize), data: Vec<T>) -> Result<Self, ShapeError> {
        if data.len() != dim.0 * dim.1 {
            return Err(ShapeError);
        }
        Ok(Array2 {
            rows: dim.0,
            cols: dim.1,
            data,
        })
    }

    /// Read-only view of the whole array.
    pub fn view(&self) -> ArrayView2<'_, T> {
        ArrayView2 {
            data: &self.data,
            phys_rows: self.rows,
            phys_cols: self.cols,
            trans: false,
        }
    }

    /// Lazily transposed view.
    pub fn t(&self) -> ArrayView2<'_, T> {
        ArrayView2 {
            data: &self.data,
            phys_rows: self.rows,
            phys_cols: self.cols,
            trans: true,
        }
    }

    /// Row `i` as a view.
    pub fn row(&self, i: usize) -> ArrayView1<'_, T> {
        assert!(i < self.rows, "row index out of bounds");
        ArrayView1 {
            data: &self.data[i * self.cols..(i + 1) * self.cols],
            stride: 1,
            len: self.cols,
        }
    }

    /// Row `i` as a mutable view.
    pub fn row_mut(&mut self, i: usize) -> ArrayViewMut1<'_, T> {
        assert!(i < self.rows, "row index out of bounds");
        let cols = self.cols;
        ArrayViewMut1 {
            data: &mut self.data[i * cols..(i + 1) * cols],
        }
    }

    /// Column `j` as a (strided) view.
    pub fn column(&self, j: usize) -> ArrayView1<'_, T> {
        assert!(j < self.cols, "column index out of bounds");
        ArrayView1 {
            data: &self.data[j..],
            stride: self.cols,
            len: self.rows,
        }
    }

    /// Iterator over rows.
    pub fn rows(&self) -> Rows<'_, T> {
        Rows {
            array: self,
            next: 0,
        }
    }

    /// Iterator over the sub-views along `axis` (0 = rows, 1 = columns).
    pub fn axis_iter(&self, axis: Axis) -> AxisIter<'_, T> {
        assert!(axis.0 < 2, "axis out of bounds");
        AxisIter {
            array: self,
            axis: axis.0,
            next: 0,
        }
    }

    /// Mutable iterator over rows (`Axis(0)` only).
    pub fn axis_iter_mut(&mut self, axis: Axis) -> impl Iterator<Item = ArrayViewMut1<'_, T>> {
        assert_eq!(axis.0, 0, "axis_iter_mut supports Axis(0) only");
        self.data
            .chunks_mut(self.cols.max(1))
            .map(|chunk| ArrayViewMut1 { data: chunk })
    }

    /// Contiguous row-block slice; see the [`s!`] macro. The column spec
    /// must be the full range.
    pub fn slice<R: SliceArg1, C: SliceArg1>(&self, spec: (R, C)) -> ArrayView2<'_, T> {
        let (r0, r1) = spec.0.bounds(self.rows);
        let (c0, c1) = spec.1.bounds(self.cols);
        assert!(
            c0 == 0 && c1 == self.cols,
            "column sub-slicing is not supported by the vendored ndarray"
        );
        ArrayView2 {
            data: &self.data[r0 * self.cols..r1 * self.cols],
            phys_rows: r1 - r0,
            phys_cols: self.cols,
            trans: false,
        }
    }

    /// Maps every element through `f` into a new array.
    pub fn mapv<U, F: FnMut(T) -> U>(&self, mut f: F) -> Array2<U>
    where
        T: Clone,
    {
        Array2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| f(x.clone())).collect(),
        }
    }

    /// Maps every element in place.
    pub fn mapv_inplace<F: FnMut(T) -> T>(&mut self, mut f: F)
    where
        T: Clone,
    {
        for x in self.data.iter_mut() {
            *x = f(x.clone());
        }
    }

    /// Overwrites every element with `value`.
    pub fn fill(&mut self, value: T)
    where
        T: Clone,
    {
        for x in self.data.iter_mut() {
            *x = value.clone();
        }
    }
}

/// Shape mismatch error from [`Array2::from_shape_vec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError;

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "data length does not match shape")
    }
}

impl std::error::Error for ShapeError {}

impl Array2<f64> {
    /// An all-zero array.
    pub fn zeros(dim: (usize, usize)) -> Self {
        Array2 {
            rows: dim.0,
            cols: dim.1,
            data: vec![0.0; dim.0 * dim.1],
        }
    }

    /// An all-one array.
    pub fn ones(dim: (usize, usize)) -> Self {
        Array2 {
            rows: dim.0,
            cols: dim.1,
            data: vec![1.0; dim.0 * dim.1],
        }
    }

    /// An array filled with `value`.
    pub fn from_elem(dim: (usize, usize), value: f64) -> Self {
        Array2 {
            rows: dim.0,
            cols: dim.1,
            data: vec![value; dim.0 * dim.1],
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.sum() / self.data.len() as f64)
        }
    }

    /// Standard deviation with `ddof` delta degrees of freedom.
    pub fn std(&self, ddof: f64) -> f64 {
        std_of(&self.data, ddof)
    }

    /// Sums along `axis`: `Axis(0)` collapses rows (result length =
    /// `ncols`), `Axis(1)` collapses columns.
    pub fn sum_axis(&self, axis: Axis) -> Array1<f64> {
        match axis.0 {
            0 => {
                let mut out = vec![0.0; self.cols];
                for row in self.data.chunks(self.cols.max(1)) {
                    for (o, &x) in out.iter_mut().zip(row.iter()) {
                        *o += x;
                    }
                }
                Array1 { data: out }
            }
            1 => Array1 {
                data: self
                    .data
                    .chunks(self.cols.max(1))
                    .map(|row| row.iter().sum())
                    .collect(),
            },
            _ => panic!("axis out of bounds"),
        }
    }

    /// Means along `axis`, or `None` when the collapsed dimension is 0.
    pub fn mean_axis(&self, axis: Axis) -> Option<Array1<f64>> {
        let denom = match axis.0 {
            0 => self.rows,
            1 => self.cols,
            _ => panic!("axis out of bounds"),
        };
        if denom == 0 {
            return None;
        }
        let mut out = self.sum_axis(axis);
        for x in out.iter_mut() {
            *x /= denom as f64;
        }
        Some(out)
    }

    /// Dot product / matrix product dispatch (see [`Dot`]).
    pub fn dot<Rhs>(&self, rhs: &Rhs) -> <Self as Dot<Rhs>>::Output
    where
        Self: Dot<Rhs>,
    {
        self.dot_impl(rhs)
    }
}

fn std_of(data: &[f64], ddof: f64) -> f64 {
    let n = data.len() as f64;
    if n == 0.0 {
        return f64::NAN;
    }
    let mean = data.iter().sum::<f64>() / n;
    let ss: f64 = data.iter().map(|&x| (x - mean) * (x - mean)).sum();
    (ss / (n - ddof)).sqrt()
}

impl<T> std::ops::Index<[usize; 2]> for Array2<T> {
    type Output = T;
    fn index(&self, idx: [usize; 2]) -> &T {
        assert!(
            idx[0] < self.rows && idx[1] < self.cols,
            "index out of bounds"
        );
        &self.data[idx[0] * self.cols + idx[1]]
    }
}

impl<T> std::ops::IndexMut<[usize; 2]> for Array2<T> {
    fn index_mut(&mut self, idx: [usize; 2]) -> &mut T {
        assert!(
            idx[0] < self.rows && idx[1] < self.cols,
            "index out of bounds"
        );
        &mut self.data[idx[0] * self.cols + idx[1]]
    }
}

/// Iterator over the rows of an [`Array2`].
pub struct Rows<'a, T> {
    array: &'a Array2<T>,
    next: usize,
}

impl<'a, T> Iterator for Rows<'a, T> {
    type Item = ArrayView1<'a, T>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.array.rows {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(ArrayView1 {
            data: &self.array.data[i * self.array.cols..(i + 1) * self.array.cols],
            stride: 1,
            len: self.array.cols,
        })
    }
}

/// Iterator over sub-views along an axis of an [`Array2`].
pub struct AxisIter<'a, T> {
    array: &'a Array2<T>,
    axis: usize,
    next: usize,
}

impl<'a, T> Iterator for AxisIter<'a, T> {
    type Item = ArrayView1<'a, T>;
    fn next(&mut self) -> Option<Self::Item> {
        let limit = if self.axis == 0 {
            self.array.rows
        } else {
            self.array.cols
        };
        if self.next >= limit {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(if self.axis == 0 {
            ArrayView1 {
                data: &self.array.data[i * self.array.cols..(i + 1) * self.array.cols],
                stride: 1,
                len: self.array.cols,
            }
        } else {
            ArrayView1 {
                data: &self.array.data[i..],
                stride: self.array.cols,
                len: self.array.rows,
            }
        })
    }
}

// ---------------------------------------------------------------------------
// View methods
// ---------------------------------------------------------------------------

impl<'a, T> ArrayView1<'a, T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element iterator (stride-aware).
    pub fn iter(&self) -> ViewIter<'a, T> {
        ViewIter {
            data: self.data,
            stride: self.stride,
            next: 0,
            len: self.len,
        }
    }

    /// Copies into an owned [`Array1`].
    pub fn to_owned(&self) -> Array1<T>
    where
        T: Clone,
    {
        Array1 {
            data: self.iter().cloned().collect(),
        }
    }

    /// Copies into a `Vec`.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }

    /// Identity view (mirrors the owned API).
    pub fn view(&self) -> ArrayView1<'a, T> {
        *self
    }

    /// Maps every element through `f` into an owned array.
    pub fn mapv<U, F: FnMut(T) -> U>(&self, mut f: F) -> Array1<U>
    where
        T: Clone,
    {
        Array1 {
            data: self.iter().map(|x| f(x.clone())).collect(),
        }
    }
}

impl ArrayView1<'_, f64> {
    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.iter().sum()
    }

    /// Mean of all elements, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.sum() / self.len as f64)
        }
    }

    /// Dot product / matrix product dispatch (see [`Dot`]).
    pub fn dot<Rhs>(&self, rhs: &Rhs) -> <Self as Dot<Rhs>>::Output
    where
        Self: Dot<Rhs>,
    {
        self.dot_impl(rhs)
    }
}

impl<T> std::ops::Index<usize> for ArrayView1<'_, T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "index out of bounds");
        &self.data[i * self.stride]
    }
}

impl<'a, T> IntoIterator for &ArrayView1<'a, T> {
    type Item = &'a T;
    type IntoIter = ViewIter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, T> IntoIterator for ArrayView1<'a, T> {
    type Item = &'a T;
    type IntoIter = ViewIter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Stride-aware iterator over a [`ArrayView1`].
pub struct ViewIter<'a, T> {
    data: &'a [T],
    stride: usize,
    next: usize,
    len: usize,
}

impl<'a, T> Iterator for ViewIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        if self.next >= self.len {
            return None;
        }
        let item = &self.data[self.next * self.stride];
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.next;
        (rem, Some(rem))
    }
}

impl<T> ExactSizeIterator for ViewIter<'_, T> {}

impl<'a, T> ArrayViewMut1<'a, T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element iterator.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable element iterator.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Overwrites every element with `value`.
    pub fn fill(&mut self, value: T)
    where
        T: Clone,
    {
        for x in self.data.iter_mut() {
            *x = value.clone();
        }
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn assign<S: VecOperand>(&mut self, other: &S)
    where
        T: From<f64>,
    {
        let len = other.vlen().expect("assign needs an array source");
        assert_eq!(self.data.len(), len, "assign length mismatch");
        for (i, x) in self.data.iter_mut().enumerate() {
            *x = T::from(other.vget(i));
        }
    }

    /// Maps every element in place.
    pub fn mapv_inplace<F: FnMut(T) -> T>(&mut self, mut f: F)
    where
        T: Clone,
    {
        for x in self.data.iter_mut() {
            *x = f(x.clone());
        }
    }
}

impl ArrayViewMut1<'_, f64> {
    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.sum() / self.data.len() as f64)
        }
    }
}

impl<T> std::ops::Index<usize> for ArrayViewMut1<'_, T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> std::ops::IndexMut<usize> for ArrayViewMut1<'_, T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<'a, T> ArrayView2<'a, T> {
    /// Logical `(rows, cols)` after any transpose.
    pub fn dim(&self) -> (usize, usize) {
        if self.trans {
            (self.phys_cols, self.phys_rows)
        } else {
            (self.phys_rows, self.phys_cols)
        }
    }

    /// Logical number of rows.
    pub fn nrows(&self) -> usize {
        self.dim().0
    }

    /// Logical number of columns.
    pub fn ncols(&self) -> usize {
        self.dim().1
    }

    /// Lazily transposed view.
    pub fn t(&self) -> ArrayView2<'a, T> {
        ArrayView2 {
            trans: !self.trans,
            ..*self
        }
    }

    /// Identity view (mirrors the owned API).
    pub fn view(&self) -> ArrayView2<'a, T> {
        *self
    }

    /// Element at logical position `(i, j)`.
    fn get(&self, i: usize, j: usize) -> &T {
        if self.trans {
            &self.data[j * self.phys_cols + i]
        } else {
            &self.data[i * self.phys_cols + j]
        }
    }

    /// Copies into an owned [`Array2`] (resolving any transpose).
    pub fn to_owned(&self) -> Array2<T>
    where
        T: Clone,
    {
        let (rows, cols) = self.dim();
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(self.get(i, j).clone());
            }
        }
        Array2 { rows, cols, data }
    }

    /// Row-major element iterator over logical positions.
    pub fn iter(&self) -> impl Iterator<Item = &'a T> + '_ {
        let (rows, cols) = self.dim();
        (0..rows).flat_map(move |i| {
            (0..cols).map(move |j| {
                if self.trans {
                    &self.data[j * self.phys_cols + i]
                } else {
                    &self.data[i * self.phys_cols + j]
                }
            })
        })
    }

    /// Maps every element through `f` into an owned array.
    pub fn mapv<U, F: FnMut(T) -> U>(&self, mut f: F) -> Array2<U>
    where
        T: Clone,
    {
        let (rows, cols) = self.dim();
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(self.get(i, j).clone()));
            }
        }
        Array2 { rows, cols, data }
    }
}

impl ArrayView2<'_, f64> {
    /// Dot product / matrix product dispatch (see [`Dot`]).
    pub fn dot<Rhs>(&self, rhs: &Rhs) -> <Self as Dot<Rhs>>::Output
    where
        Self: Dot<Rhs>,
    {
        self.dot_impl(rhs)
    }
}

impl<T> std::ops::Index<[usize; 2]> for ArrayView2<'_, T> {
    type Output = T;
    fn index(&self, idx: [usize; 2]) -> &T {
        let (rows, cols) = self.dim();
        assert!(idx[0] < rows && idx[1] < cols, "index out of bounds");
        self.get(idx[0], idx[1])
    }
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

/// Builds a 1-D array from a slice.
pub fn arr1(xs: &[f64]) -> Array1<f64> {
    Array1 { data: xs.to_vec() }
}

/// Builds a 2-D array from nested fixed-size rows.
pub fn arr2<const N: usize>(xs: &[[f64; N]]) -> Array2<f64> {
    let mut data = Vec::with_capacity(xs.len() * N);
    for row in xs {
        data.extend_from_slice(row);
    }
    Array2 {
        rows: xs.len(),
        cols: N,
        data,
    }
}

// ---------------------------------------------------------------------------
// Dot products
// ---------------------------------------------------------------------------

/// Internal descriptor of a (possibly strided) f64 vector.
#[derive(Clone, Copy)]
pub struct VecDesc<'a> {
    data: &'a [f64],
    stride: usize,
    len: usize,
}

/// Internal descriptor of a (possibly transposed) row-major f64 matrix.
#[derive(Clone, Copy)]
pub struct MatDesc<'a> {
    data: &'a [f64],
    phys_rows: usize,
    phys_cols: usize,
    trans: bool,
}

/// Conversion into [`VecDesc`] (sealed; implementation detail of `dot`).
pub trait AsVecDesc {
    /// The descriptor.
    fn vec_desc(&self) -> VecDesc<'_>;
}

/// Conversion into [`MatDesc`] (sealed; implementation detail of `dot`).
pub trait AsMatDesc {
    /// The descriptor.
    fn mat_desc(&self) -> MatDesc<'_>;
}

impl AsVecDesc for Array1<f64> {
    fn vec_desc(&self) -> VecDesc<'_> {
        VecDesc {
            data: &self.data,
            stride: 1,
            len: self.data.len(),
        }
    }
}

impl AsVecDesc for ArrayView1<'_, f64> {
    fn vec_desc(&self) -> VecDesc<'_> {
        VecDesc {
            data: self.data,
            stride: self.stride,
            len: self.len,
        }
    }
}

impl AsMatDesc for Array2<f64> {
    fn mat_desc(&self) -> MatDesc<'_> {
        MatDesc {
            data: &self.data,
            phys_rows: self.rows,
            phys_cols: self.cols,
            trans: false,
        }
    }
}

impl AsMatDesc for ArrayView2<'_, f64> {
    fn mat_desc(&self) -> MatDesc<'_> {
        MatDesc {
            data: self.data,
            phys_rows: self.phys_rows,
            phys_cols: self.phys_cols,
            trans: self.trans,
        }
    }
}

impl MatDesc<'_> {
    fn ldim(&self) -> (usize, usize) {
        if self.trans {
            (self.phys_cols, self.phys_rows)
        } else {
            (self.phys_rows, self.phys_cols)
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        if self.trans {
            self.data[j * self.phys_cols + i]
        } else {
            self.data[i * self.phys_cols + j]
        }
    }
}

fn contiguous(v: VecDesc<'_>) -> std::borrow::Cow<'_, [f64]> {
    if v.stride == 1 {
        std::borrow::Cow::Borrowed(&v.data[..v.len])
    } else {
        std::borrow::Cow::Owned((0..v.len).map(|i| v.data[i * v.stride]).collect())
    }
}

/// Unrolled four-accumulator dot product: rustc cannot auto-vectorize a
/// plain `f64` reduction (FP addition is not associative), so the lanes
/// are split explicitly. This is the single hottest kernel in the
/// workspace; it dispatches to the runtime-detected SIMD tier
/// ([`simd::dot`] — bit-identical to the scalar reference by
/// construction, see the [`simd`] module docs).
#[inline]
pub(crate) fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    simd::dot(a, b)
}

/// `o += x * b`, element-wise over slices, on the SIMD tier.
#[inline]
fn axpy(o: &mut [f64], x: f64, b: &[f64]) {
    simd::axpy(o, x, b);
}

/// Samples (up to 4096 elements of) a matrix for zero density; ≥ 40%
/// zeros flips the GEMM into its sparse-row kernel.
fn is_mostly_zero(data: &[f64]) -> bool {
    let sample = &data[..data.len().min(4096)];
    if sample.is_empty() {
        return false;
    }
    let zeros = sample.iter().filter(|&&x| x == 0.0).count();
    zeros * 5 >= sample.len() * 2
}

pub(crate) fn vec_dot(a: VecDesc<'_>, b: VecDesc<'_>) -> f64 {
    assert_eq!(a.len, b.len, "dot length mismatch");
    if a.stride == 1 && b.stride == 1 {
        dot_slices(&a.data[..a.len], &b.data[..b.len])
    } else {
        (0..a.len)
            .map(|i| a.data[i * a.stride] * b.data[i * b.stride])
            .sum()
    }
}

pub(crate) fn mat_vec(m: MatDesc<'_>, v: VecDesc<'_>) -> Array1<f64> {
    let (rows, cols) = m.ldim();
    assert_eq!(cols, v.len, "matrix·vector dimension mismatch");
    let x = contiguous(v);
    let mut out = vec![0.0; rows];
    let pc = m.phys_cols.max(1);
    if !m.trans {
        // Four rows share one streaming pass over `x` via
        // [`simd::dot4_rows`]; each row keeps its own four-lane
        // reduction tree, so the quad is bit-identical to four
        // independent `dot_slices` calls.
        let mut r = 0;
        while r + 4 <= rows {
            let base = r * pc;
            let quad = simd::dot4_rows(
                &m.data[base..base + cols],
                &m.data[base + pc..base + pc + cols],
                &m.data[base + 2 * pc..base + 2 * pc + cols],
                &m.data[base + 3 * pc..base + 3 * pc + cols],
                &x,
            );
            out[r..r + 4].copy_from_slice(&quad);
            r += 4;
        }
        for (o, row) in out[r..].iter_mut().zip(m.data[r * pc..].chunks(pc)) {
            *o = dot_slices(&row[..cols], &x);
        }
    } else {
        // out[j] = Σ_i data[i, j] x[i]: stream the physical rows,
        // fusing four nonzero coefficients into one pass over `out`
        // ([`simd::axpy4`] applies them per element in the same
        // sequential order as four separate `axpy` sweeps).
        let mut pend: [(f64, &[f64]); 4] = [(0.0, &[][..]); 4];
        let mut n_pend = 0;
        for (i, row) in m.data.chunks(pc).enumerate() {
            let xi = x[i];
            if xi != 0.0 {
                pend[n_pend] = (xi, row);
                n_pend += 1;
                if n_pend == 4 {
                    simd::axpy4(
                        &mut out,
                        [pend[0].0, pend[1].0, pend[2].0, pend[3].0],
                        pend[0].1,
                        pend[1].1,
                        pend[2].1,
                        pend[3].1,
                    );
                    n_pend = 0;
                }
            }
        }
        for &(xi, row) in &pend[..n_pend] {
            axpy(&mut out, xi, row);
        }
    }
    Array1 { data: out }
}

pub(crate) fn vec_mat(v: VecDesc<'_>, m: MatDesc<'_>) -> Array1<f64> {
    // v (1×k) · M (k×n) = (Mᵀ · v)
    mat_vec(
        MatDesc {
            trans: !m.trans,
            ..m
        },
        v,
    )
}

/// How many workers a GEMM of `m·k·n` multiply-adds should fan out
/// across the rayon pool (only with the `rayon` feature; the pool
/// degrades to inline execution at one thread).
///
/// Retuned for the batched-sampler workloads (PR 4), measured on the
/// reference box: the blocked serial kernel sustains ~3 GMAC/s, and the
/// vendored rayon's scoped fan-out costs ~25–40 µs of thread spawn per
/// worker — so a worker needs ≥ `2^20` MACs (~350 µs of work) to keep
/// the spawn overhead under ~10%. The old gate (`total ≥ 2^21`, then
/// *all* threads) both under-engaged mid-size products on few-core
/// runners and over-fanned them on many-core ones (16 workers × 128k
/// MACs is ~45 µs of work against ~30 µs of spawn each); the per-worker
/// floor replaces it: fan out as wide as the pool and the row count
/// allow while every worker keeps at least `2^20` MACs. A batch-64
/// CD-1 sampling GEMM at 784×200 (10 M MACs) now engages up to 9
/// workers; small coalesced serving batches (8×784×200 ≈ 1.25 M MACs)
/// stay serial, which the spawn-cost measurement says is the faster
/// choice.
#[cfg(feature = "rayon")]
fn gemm_parallel_rows(m: usize, k: usize, n: usize) -> usize {
    /// Minimum multiply-adds per worker (see above).
    const MIN_MACS_PER_WORKER: usize = 1 << 20;
    let threads = rayon::current_num_threads();
    let macs = m * k * n;
    if threads <= 1 || m < 2 || macs < 2 * MIN_MACS_PER_WORKER {
        1
    } else {
        threads.min(m).min(macs / MIN_MACS_PER_WORKER)
    }
}

pub(crate) fn mat_mat(a: MatDesc<'_>, b: MatDesc<'_>) -> Array2<f64> {
    let (m, k) = a.ldim();
    let (k2, n) = b.ldim();
    assert_eq!(k, k2, "matrix·matrix dimension mismatch");

    // Output rows are independent: with the `rayon` feature enabled and a
    // large enough product, split the *logical* A rows into contiguous
    // blocks and compute each block on its own worker. Each output row is
    // produced entirely by one worker, so the result is bit-identical at
    // every thread count.
    #[cfg(feature = "rayon")]
    {
        let workers = gemm_parallel_rows(m, k, n);
        if workers > 1 && !a.trans {
            use rayon::prelude::*;
            let block = m.div_ceil(workers);
            let blocks: Vec<Array2<f64>> = (0..workers)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|w| {
                    let lo = w * block;
                    let hi = ((w + 1) * block).min(m);
                    let sub = MatDesc {
                        data: &a.data[lo * k..hi * k],
                        phys_rows: hi - lo,
                        phys_cols: k,
                        trans: false,
                    };
                    mat_mat_serial(sub, b)
                })
                .collect();
            let mut data = Vec::with_capacity(m * n);
            for blk in blocks {
                data.extend_from_slice(&blk.data);
            }
            return Array2 {
                rows: m,
                cols: n,
                data,
            };
        }
    }
    mat_mat_serial(a, b)
}

fn mat_mat_serial(a: MatDesc<'_>, b: MatDesc<'_>) -> Array2<f64> {
    let (m, k) = a.ldim();
    let (k2, n) = b.ldim();
    assert_eq!(k, k2, "matrix·matrix dimension mismatch");
    let mut out = vec![0.0; m * n];
    match (a.trans, b.trans) {
        (false, false) if is_mostly_zero(a.data) => {
            // Sparse-A ikj: RBM activations are 0/1 matrices that are
            // mostly zero, where skipping whole B-row streams beats the
            // blocked kernel's traffic savings.
            for (arow, orow) in a.data.chunks(k).zip(out.chunks_mut(n)) {
                for (p, &aip) in arow.iter().enumerate() {
                    if aip != 0.0 {
                        axpy(orow, aip, &b.data[p * n..(p + 1) * n]);
                    }
                }
            }
        }
        (false, false) => {
            // Blocked ikj: four A rows share each streamed B row, cutting
            // B traffic 4× versus the row-at-a-time loop. The tile height
            // is deliberately 4 (not wider): each step of the p-loop holds
            // one A coefficient per tile row in a register (`a0..a3`)
            // alongside the four output-row pointers, which is what the
            // measurement on the reference box showed to be the
            // register-pressure sweet spot for this shape of kernel; the
            // bit-packed kernels in `ember_core::kernels`, which carry
            // *masks* instead of coefficient registers, profitably block
            // 8 rows.
            let mut ablocks = a.data.chunks(4 * k);
            let mut oblocks = out.chunks_mut(4 * n);
            for (ablock, oblock) in (&mut ablocks).zip(&mut oblocks) {
                if ablock.len() == 4 * k {
                    let (o0, rest) = oblock.split_at_mut(n);
                    let (o1, rest) = rest.split_at_mut(n);
                    let (o2, o3) = rest.split_at_mut(n);
                    for p in 0..k {
                        let brow = &b.data[p * n..(p + 1) * n];
                        let (a0, a1) = (ablock[p], ablock[k + p]);
                        let (a2, a3) = (ablock[2 * k + p], ablock[3 * k + p]);
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        simd::block4_update(o0, o1, o2, o3, a0, a1, a2, a3, brow);
                    }
                } else {
                    // Trailing block of fewer than four rows.
                    for (arow, orow) in ablock.chunks(k).zip(oblock.chunks_mut(n)) {
                        for (p, &aip) in arow.iter().enumerate() {
                            if aip != 0.0 {
                                axpy(orow, aip, &b.data[p * n..(p + 1) * n]);
                            }
                        }
                    }
                }
            }
        }
        (true, false) => {
            // A physical is (k × m): stream both physical rows.
            for p in 0..k {
                let arow = &a.data[p * m..(p + 1) * m];
                let brow = &b.data[p * n..(p + 1) * n];
                for (i, &aip) in arow.iter().enumerate() {
                    if aip != 0.0 {
                        axpy(&mut out[i * n..(i + 1) * n], aip, brow);
                    }
                }
            }
        }
        (false, true) => {
            // B physical is (n × k): row·row dot products.
            for i in 0..m {
                let arow = &a.data[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = dot_slices(arow, &b.data[j * k..(j + 1) * k]);
                }
            }
        }
        (true, true) => {
            for i in 0..m {
                let orow = &mut out[i * n..(i + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = (0..k).map(|p| a.at(i, p) * b.at(p, j)).sum();
                }
            }
        }
    }
    Array2 {
        rows: m,
        cols: n,
        data: out,
    }
}

/// Product dispatch trait behind the inherent `dot` methods (mirrors
/// ndarray's `Dot`).
pub trait Dot<Rhs> {
    /// Result type: `f64` for vec·vec, [`Array1`] for mat·vec / vec·mat,
    /// [`Array2`] for mat·mat.
    type Output;
    /// Computes the product.
    fn dot_impl(&self, rhs: &Rhs) -> Self::Output;
}

macro_rules! impl_dot_vv {
    ($(($l:ty, $r:ty)),*) => {$(
        impl Dot<$r> for $l {
            type Output = f64;
            fn dot_impl(&self, rhs: &$r) -> f64 {
                vec_dot(self.vec_desc(), rhs.vec_desc())
            }
        }
    )*};
}
impl_dot_vv!(
    (Array1<f64>, Array1<f64>),
    (Array1<f64>, ArrayView1<'_, f64>),
    (ArrayView1<'_, f64>, Array1<f64>),
    (ArrayView1<'_, f64>, ArrayView1<'_, f64>)
);

macro_rules! impl_dot_mv {
    ($(($l:ty, $r:ty)),*) => {$(
        impl Dot<$r> for $l {
            type Output = Array1<f64>;
            fn dot_impl(&self, rhs: &$r) -> Array1<f64> {
                mat_vec(self.mat_desc(), rhs.vec_desc())
            }
        }
    )*};
}
impl_dot_mv!(
    (Array2<f64>, Array1<f64>),
    (Array2<f64>, ArrayView1<'_, f64>),
    (ArrayView2<'_, f64>, Array1<f64>),
    (ArrayView2<'_, f64>, ArrayView1<'_, f64>)
);

macro_rules! impl_dot_vm {
    ($(($l:ty, $r:ty)),*) => {$(
        impl Dot<$r> for $l {
            type Output = Array1<f64>;
            fn dot_impl(&self, rhs: &$r) -> Array1<f64> {
                vec_mat(self.vec_desc(), rhs.mat_desc())
            }
        }
    )*};
}
impl_dot_vm!(
    (Array1<f64>, Array2<f64>),
    (Array1<f64>, ArrayView2<'_, f64>),
    (ArrayView1<'_, f64>, Array2<f64>),
    (ArrayView1<'_, f64>, ArrayView2<'_, f64>)
);

macro_rules! impl_dot_mm {
    ($(($l:ty, $r:ty)),*) => {$(
        impl Dot<$r> for $l {
            type Output = Array2<f64>;
            fn dot_impl(&self, rhs: &$r) -> Array2<f64> {
                mat_mat(self.mat_desc(), rhs.mat_desc())
            }
        }
    )*};
}
impl_dot_mm!(
    (Array2<f64>, Array2<f64>),
    (Array2<f64>, ArrayView2<'_, f64>),
    (ArrayView2<'_, f64>, Array2<f64>),
    (ArrayView2<'_, f64>, ArrayView2<'_, f64>)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_all_transpose_cases_agree() {
        let a = arr2(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]); // 2×3
        let b = arr2(&[[7.0, 8.0], [9.0, 10.0], [11.0, 12.0]]); // 3×2
        let c = a.dot(&b);
        assert_eq!(c.dim(), (2, 2));
        assert_eq!(c[[0, 0]], 58.0);
        assert_eq!(c[[1, 1]], 154.0);

        // (AᵀᵀB) through the transposed paths.
        let at = a.t().to_owned(); // 3×2
        let c2 = at.t().dot(&b);
        assert_eq!(c, c2);
        let bt = b.t().to_owned(); // 2×3
        let c3 = a.dot(&bt.t());
        assert_eq!(c, c3);
        let c4 = at.t().dot(&bt.t());
        assert_eq!(c, c4);
    }

    #[cfg(feature = "rayon")]
    #[test]
    fn gemm_fan_out_keeps_a_full_block_per_worker() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(16)
            .build()
            .expect("pool");
        pool.install(|| {
            // Tiny and mid-size products stay serial…
            assert_eq!(gemm_parallel_rows(8, 10, 10), 1);
            assert_eq!(gemm_parallel_rows(8, 784, 200), 1); // ≈1.25M MACs
                                                            // …the batch-64 sampler GEMM engages, but only as many
                                                            // workers as keep ≥2^20 MACs each (not the whole pool)…
            assert_eq!(gemm_parallel_rows(64, 784, 200), 9);
            // …and a huge product takes the pool, capped by rows.
            assert_eq!(gemm_parallel_rows(4096, 784, 200), 16);
            assert_eq!(gemm_parallel_rows(2, 4096, 4096), 2);
        });
        // One thread: always serial.
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        serial.install(|| assert_eq!(gemm_parallel_rows(4096, 784, 200), 1));
    }

    #[cfg(feature = "rayon")]
    #[test]
    fn parallel_gemm_matches_serial_bitwise() {
        // The fan-out splits logical A rows into contiguous blocks, so
        // the result must be bit-identical to the serial kernel at any
        // worker count — including the retuned engagement sizes.
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let a = Array2::from_shape_fn((64, 300), |_| if next() > 0.2 { 0.0 } else { 1.0 });
        let b = Array2::from_shape_fn((300, 120), |_| next());
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool")
            .install(|| a.dot(&b));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .expect("pool")
            .install(|| a.dot(&b));
        let sbits: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();
        let pbits: Vec<u64> = parallel.iter().map(|x| x.to_bits()).collect();
        assert_eq!(sbits, pbits);
    }

    #[test]
    fn gemv_and_transposed_gemv() {
        let a = arr2(&[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]); // 3×2
        let x = arr1(&[1.0, -1.0]);
        let y = a.dot(&x);
        assert_eq!(y.as_slice(), &[-1.0, -1.0, -1.0]);
        let z = a.t().dot(&arr1(&[1.0, 1.0, 1.0]));
        assert_eq!(z.as_slice(), &[9.0, 12.0]);
        let w = x.dot(&a.t()); // vec·mat
        assert_eq!(w.as_slice(), &[-1.0, -1.0, -1.0]);
    }

    #[test]
    fn axis_reductions() {
        let a = arr2(&[[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(a.sum_axis(Axis(0)).as_slice(), &[4.0, 6.0]);
        assert_eq!(a.sum_axis(Axis(1)).as_slice(), &[3.0, 7.0]);
        assert_eq!(a.mean_axis(Axis(0)).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mean().unwrap(), 2.5);
    }

    #[test]
    fn slicing_and_views() {
        let a = arr2(&[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
        let block = a.slice(s![1..3, ..]).to_owned();
        assert_eq!(block.dim(), (2, 2));
        assert_eq!(block[[0, 0]], 3.0);
        let v = arr1(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.slice(s![..2]).to_owned().as_slice(), &[1.0, 2.0]);
        assert_eq!(v.slice(s![2..]).to_owned().as_slice(), &[3.0, 4.0]);
        let col = a.column(1);
        assert_eq!(col.to_owned().as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(col[2], 6.0);
    }

    #[test]
    fn rows_and_axis_iter() {
        let a = arr2(&[[1.0, 2.0], [3.0, 4.0]]);
        let rows: Vec<Vec<f64>> = a.rows().map(|r| r.iter().cloned().collect()).collect();
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let cols: Vec<Vec<f64>> = a
            .axis_iter(Axis(1))
            .map(|c| c.iter().cloned().collect())
            .collect();
        assert_eq!(cols, vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
        let mut b = a.clone();
        for mut row in b.axis_iter_mut(Axis(0)) {
            row += &arr1(&[10.0, 20.0]);
        }
        assert_eq!(b[[1, 1]], 24.0);
    }

    #[test]
    fn elementwise_and_scalar_ops() {
        let a = arr1(&[1.0, 2.0]);
        let b = arr1(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        c /= 2.0;
        assert_eq!(c.as_slice(), &[2.0, 3.0]);
        let m = arr2(&[[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!((&m * 2.0)[[1, 0]], 6.0);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }
}
