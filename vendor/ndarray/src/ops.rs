//! Elementwise arithmetic with scalar broadcast.
//!
//! A single generic impl per operator covers array ⊕ array, array ⊕ view,
//! and array ⊕ scalar: the RHS is anything implementing [`VecOperand`] /
//! [`MatOperand`], where a bare `f64` broadcasts (its `vlen`/`mdim` is
//! `None`).

use crate::{Array1, Array2, ArrayView1, ArrayView2, ArrayViewMut1};

/// Right-hand operand of a 1-D elementwise operation.
pub trait VecOperand {
    /// Length, or `None` for a broadcast scalar.
    fn vlen(&self) -> Option<usize>;
    /// Element at `i` (ignored index for scalars).
    fn vget(&self, i: usize) -> f64;
}

impl VecOperand for f64 {
    fn vlen(&self) -> Option<usize> {
        None
    }
    #[inline]
    fn vget(&self, _i: usize) -> f64 {
        *self
    }
}

impl VecOperand for Array1<f64> {
    fn vlen(&self) -> Option<usize> {
        Some(self.data.len())
    }
    #[inline]
    fn vget(&self, i: usize) -> f64 {
        self.data[i]
    }
}

impl VecOperand for ArrayView1<'_, f64> {
    fn vlen(&self) -> Option<usize> {
        Some(self.len)
    }
    #[inline]
    fn vget(&self, i: usize) -> f64 {
        self.data[i * self.stride]
    }
}

impl<S: VecOperand + ?Sized> VecOperand for &S {
    fn vlen(&self) -> Option<usize> {
        (**self).vlen()
    }
    #[inline]
    fn vget(&self, i: usize) -> f64 {
        (**self).vget(i)
    }
}

/// Right-hand operand of a 2-D elementwise operation.
pub trait MatOperand {
    /// `(rows, cols)`, or `None` for a broadcast scalar.
    fn mdim(&self) -> Option<(usize, usize)>;
    /// Element at `(i, j)` (ignored for scalars).
    fn mget(&self, i: usize, j: usize) -> f64;
}

impl MatOperand for f64 {
    fn mdim(&self) -> Option<(usize, usize)> {
        None
    }
    #[inline]
    fn mget(&self, _i: usize, _j: usize) -> f64 {
        *self
    }
}

impl MatOperand for Array2<f64> {
    fn mdim(&self) -> Option<(usize, usize)> {
        Some((self.rows, self.cols))
    }
    #[inline]
    fn mget(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }
}

impl MatOperand for ArrayView2<'_, f64> {
    fn mdim(&self) -> Option<(usize, usize)> {
        Some(self.dim())
    }
    #[inline]
    fn mget(&self, i: usize, j: usize) -> f64 {
        if self.trans {
            self.data[j * self.phys_cols + i]
        } else {
            self.data[i * self.phys_cols + j]
        }
    }
}

impl<S: MatOperand + ?Sized> MatOperand for &S {
    fn mdim(&self) -> Option<(usize, usize)> {
        (**self).mdim()
    }
    #[inline]
    fn mget(&self, i: usize, j: usize) -> f64 {
        (**self).mget(i, j)
    }
}

fn check_vlen(lhs: usize, rhs: Option<usize>) {
    if let Some(r) = rhs {
        assert_eq!(lhs, r, "elementwise length mismatch");
    }
}

fn check_mdim(lhs: (usize, usize), rhs: Option<(usize, usize)>) {
    if let Some(r) = rhs {
        assert_eq!(lhs, r, "elementwise shape mismatch");
    }
}

macro_rules! impl_vec_binop {
    ($($trait:ident, $method:ident, $op:tt;)*) => {$(
        impl<R: VecOperand> std::ops::$trait<R> for Array1<f64> {
            type Output = Array1<f64>;
            // clippy's assign-op suggestion would splice the wrong
            // operator into this macro body.
            #[allow(clippy::assign_op_pattern)]
            fn $method(mut self, rhs: R) -> Array1<f64> {
                check_vlen(self.data.len(), rhs.vlen());
                for (i, x) in self.data.iter_mut().enumerate() {
                    *x = *x $op rhs.vget(i);
                }
                self
            }
        }
        impl<R: VecOperand> std::ops::$trait<R> for &Array1<f64> {
            type Output = Array1<f64>;
            fn $method(self, rhs: R) -> Array1<f64> {
                check_vlen(self.data.len(), rhs.vlen());
                Array1 {
                    data: self
                        .data
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| x $op rhs.vget(i))
                        .collect(),
                }
            }
        }
        impl<R: VecOperand> std::ops::$trait<R> for ArrayView1<'_, f64> {
            type Output = Array1<f64>;
            fn $method(self, rhs: R) -> Array1<f64> {
                check_vlen(self.len, rhs.vlen());
                Array1 {
                    data: (0..self.len)
                        .map(|i| self.data[i * self.stride] $op rhs.vget(i))
                        .collect(),
                }
            }
        }
        impl<R: VecOperand> std::ops::$trait<R> for &ArrayView1<'_, f64> {
            type Output = Array1<f64>;
            fn $method(self, rhs: R) -> Array1<f64> {
                (*self).$method(rhs)
            }
        }
    )*};
}

impl_vec_binop! {
    Add, add, +;
    Sub, sub, -;
    Mul, mul, *;
    Div, div, /;
}

macro_rules! impl_vec_assign {
    ($($trait:ident, $method:ident, $op:tt;)*) => {$(
        impl<R: VecOperand> std::ops::$trait<R> for Array1<f64> {
            fn $method(&mut self, rhs: R) {
                check_vlen(self.data.len(), rhs.vlen());
                for (i, x) in self.data.iter_mut().enumerate() {
                    *x $op rhs.vget(i);
                }
            }
        }
        impl<R: VecOperand> std::ops::$trait<R> for ArrayViewMut1<'_, f64> {
            fn $method(&mut self, rhs: R) {
                check_vlen(self.data.len(), rhs.vlen());
                for (i, x) in self.data.iter_mut().enumerate() {
                    *x $op rhs.vget(i);
                }
            }
        }
    )*};
}

impl_vec_assign! {
    AddAssign, add_assign, +=;
    SubAssign, sub_assign, -=;
    MulAssign, mul_assign, *=;
    DivAssign, div_assign, /=;
}

macro_rules! impl_mat_binop {
    ($($trait:ident, $method:ident, $op:tt;)*) => {$(
        impl<R: MatOperand> std::ops::$trait<R> for Array2<f64> {
            type Output = Array2<f64>;
            // clippy's assign-op suggestion would splice the wrong
            // operator into this macro body.
            #[allow(clippy::assign_op_pattern)]
            fn $method(mut self, rhs: R) -> Array2<f64> {
                check_mdim((self.rows, self.cols), rhs.mdim());
                let cols = self.cols;
                for (idx, x) in self.data.iter_mut().enumerate() {
                    *x = *x $op rhs.mget(idx / cols, idx % cols);
                }
                self
            }
        }
        impl<R: MatOperand> std::ops::$trait<R> for &Array2<f64> {
            type Output = Array2<f64>;
            fn $method(self, rhs: R) -> Array2<f64> {
                check_mdim((self.rows, self.cols), rhs.mdim());
                let cols = self.cols;
                Array2 {
                    rows: self.rows,
                    cols,
                    data: self
                        .data
                        .iter()
                        .enumerate()
                        .map(|(idx, &x)| x $op rhs.mget(idx / cols, idx % cols))
                        .collect(),
                }
            }
        }
    )*};
}

impl_mat_binop! {
    Add, add, +;
    Sub, sub, -;
    Mul, mul, *;
    Div, div, /;
}

macro_rules! impl_mat_assign {
    ($($trait:ident, $method:ident, $op:tt;)*) => {$(
        impl<R: MatOperand> std::ops::$trait<R> for Array2<f64> {
            fn $method(&mut self, rhs: R) {
                check_mdim((self.rows, self.cols), rhs.mdim());
                let cols = self.cols;
                for (idx, x) in self.data.iter_mut().enumerate() {
                    *x $op rhs.mget(idx / cols, idx % cols);
                }
            }
        }
    )*};
}

impl_mat_assign! {
    AddAssign, add_assign, +=;
    SubAssign, sub_assign, -=;
    MulAssign, mul_assign, *=;
    DivAssign, div_assign, /=;
}

impl std::ops::Neg for Array1<f64> {
    type Output = Array1<f64>;
    fn neg(mut self) -> Array1<f64> {
        for x in self.data.iter_mut() {
            *x = -*x;
        }
        self
    }
}

impl std::ops::Neg for &Array1<f64> {
    type Output = Array1<f64>;
    fn neg(self) -> Array1<f64> {
        Array1 {
            data: self.data.iter().map(|&x| -x).collect(),
        }
    }
}

impl std::ops::Neg for Array2<f64> {
    type Output = Array2<f64>;
    fn neg(mut self) -> Array2<f64> {
        for x in self.data.iter_mut() {
            *x = -*x;
        }
        self
    }
}

impl std::ops::Neg for &Array2<f64> {
    type Output = Array2<f64>;
    fn neg(self) -> Array2<f64> {
        Array2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| -x).collect(),
        }
    }
}
