//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `rand` it actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform sampling of
//! primitives and ranges, and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! *determinism* and statistical quality, never on upstream's exact
//! stream.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an RNG's raw output (the vendored
/// stand-in for `StandardUniform: Distribution<T>`).
pub trait UniformSample: Sized {
    /// Draws one uniformly distributed value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    #[inline]
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for bool {
    #[inline]
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $from:ident),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$from() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

/// Element types usable as range bounds in [`Rng::random_range`].
///
/// The [`SampleRange`] impls are *blanket* over this trait (one impl per
/// range shape) so type inference can unify the range's element type with
/// the requested output type the same way upstream rand does.
pub trait SampleBounds: Sized + Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_exclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_float_bounds {
    ($($t:ty => $word:ident, $shift:expr, $denom:expr;)*) => {$(
        impl SampleBounds for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "empty range");
                start + <$t>::uniform_sample(rng) * (end - start)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "empty range");
                // Mantissa-width uniform over [0, 1] *inclusive* so the
                // upper bound is reachable, matching `..=` semantics.
                let unit = (rng.$word() >> $shift) as $t / $denom;
                start + unit * (end - start)
            }
        }
    )*};
}
impl_float_bounds! {
    f64 => next_u64, 11, ((1u64 << 53) - 1) as f64;
    f32 => next_u32, 8, ((1u32 << 24) - 1) as f32;
}

// Integer ranges use plain modulo reduction: the bias is < span/2⁶⁴,
// immaterial for this workspace's small spans, and keeps the stream
// consumption at exactly one word per draw (determinism contract).
macro_rules! impl_int_bounds {
    ($($t:ty),*) => {$(
        impl SampleBounds for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "empty range");
                let span = (end as i128 - start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_int_bounds!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleBounds> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleBounds> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn random<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        f64::uniform_sample(self) < p
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns an iterator of uniformly distributed values.
    fn random_iter<T: UniformSample>(&mut self) -> RandomIter<'_, Self, T> {
        RandomIter {
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Iterator over uniform draws, see [`Rng::random_iter`].
pub struct RandomIter<'a, R: ?Sized, T> {
    rng: &'a mut R,
    _marker: core::marker::PhantomData<T>,
}

impl<R: RngCore + ?Sized, T: UniformSample> Iterator for RandomIter<'_, R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(T::uniform_sample(self.rng))
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded through SplitMix64
    /// (matches upstream's documented behavior of seeding the full state
    /// deterministically from one word).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(w.to_le_bytes().iter()) {
                *b = *s;
            }
        }
        Self::from_seed(seed)
    }

    /// Builds the generator by drawing a seed from another RNG.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// High statistical quality, tiny state, and a pure function of its
    /// seed — everything the experiments rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.step().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Small fast generator — same engine as [`StdRng`] in this vendored
    /// build.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = rng.random_range(0..5);
            assert!((0..5).contains(&k));
            let j = rng.random_range(2..=4usize);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
