//! Offline vendored subset of the `rayon` API, built on
//! `std::thread::scope`.
//!
//! Provides genuinely parallel, **order-preserving** `par_iter`-style
//! mapping over indexed work items: the item list is split into one
//! contiguous chunk per worker, each worker maps its chunk on its own OS
//! thread, and the chunks are re-joined in index order. Because results
//! are keyed by index (never by completion order), any algorithm whose
//! per-item work is a pure function of the item is **bit-identical at
//! every thread count** — the property the workspace's parallel sampling
//! engine builds its reproducibility contract on.
//!
//! Thread count: `RAYON_NUM_THREADS` env var, else the machine's
//! available parallelism; [`ThreadPoolBuilder::build`] +
//! [`ThreadPool::install`] scopes an override (used by the
//! parallel/serial equivalence tests to pin 1, 2, and 8 threads).

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = value.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The number of worker threads parallel operations will use in the
/// current scope.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(|t| t.get())
        .unwrap_or_else(default_threads)
}

/// Error building a thread pool (never produced by this vendored build;
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread-count override.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: None }
    }

    /// Sets the worker count (0 = automatic).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this vendored build.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_threads),
        })
    }
}

/// A handle that scopes a thread-count override; workers are spawned per
/// operation (scoped threads), not retained.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed for every
    /// parallel operation `f` performs on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(Some(self.num_threads)));
        let result = f();
        INSTALLED_THREADS.with(|t| t.set(prev));
        result
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Order-preserving parallel map: applies `f` to every item, splitting
/// the items into one contiguous chunk per worker thread.
fn parallel_map_vec<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut results: Vec<Vec<O>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A materialized parallel iterator (items are collected up front).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A parallel iterator with a pending map stage.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion (`.par_iter()`), yielding `&T` items.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Converts `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` (lazily; executed by a collect/reduce).
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        parallel_map_vec(self.items, &f);
    }
}

impl<I: Send, O: Send, F: Fn(I) -> O + Sync> ParMap<I, F> {
    /// Executes the map in parallel, preserving item order.
    pub fn collect<C: FromParallelResults<O>>(self) -> C {
        C::from_ordered(parallel_map_vec(self.items, &self.f))
    }

    /// Executes and sums the results.
    pub fn sum<S: std::iter::Sum<O>>(self) -> S {
        parallel_map_vec(self.items, &self.f).into_iter().sum()
    }

    /// Executes and reduces with `op` starting from `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> O
    where
        ID: Fn() -> O,
        OP: Fn(O, O) -> O,
    {
        parallel_map_vec(self.items, &self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Collection types a parallel map can gather into.
pub trait FromParallelResults<O> {
    /// Builds the collection from results in item order.
    fn from_ordered(results: Vec<O>) -> Self;
}

impl<O> FromParallelResults<O> for Vec<O> {
    fn from_ordered(results: Vec<O>) -> Vec<O> {
        results
    }
}

/// The usual glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let serial: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| (0..64).into_par_iter().map(|i| (i as u64).pow(2)).collect());
        let parallel: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| (0..64).into_par_iter().map(|i| (i as u64).pow(2)).collect());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn actually_spawns_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..64).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected multiple worker threads"
        );
    }
}
