//! Offline vendored subset of `rand_distr`: the [`Distribution`] trait and
//! the [`Normal`] (Gaussian) distribution, which is all this workspace
//! uses. Sampling uses the Marsaglia polar method (exact, not an
//! approximation), consuming a variable number of uniforms per call.

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// [`NormalError`] if `std_dev` is negative or either parameter is
    /// non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The location parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The scale parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; one of the pair is discarded so each
        // call is a pure function of the RNG stream consumed.
        loop {
            let u = 2.0 * rng.random::<f64>() - 1.0;
            let v = 2.0 * rng.random::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Standard normal `N(0, 1)`, sampled the same way as [`Normal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(2.0, 3.0).unwrap();
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 2.0).abs() < 0.03, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }
}
