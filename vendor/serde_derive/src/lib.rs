//! Derive macros for the vendored serde facade.
//!
//! Implemented without `syn`/`quote` (unavailable offline) by walking the
//! raw [`proc_macro::TokenStream`]. Supports the shapes this workspace
//! actually derives on:
//!
//! * structs with named fields,
//! * enums with unit variants and/or struct variants (externally tagged).
//!
//! Generics, tuple structs, and `#[serde(...)]` attributes are not
//! supported and produce a compile error naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Option<Vec<String>>, // None = unit variant
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility to find `struct` / `enum`.
    let kind_kw = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => return Err("no struct or enum found".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported"));
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple struct `{name}` is not supported"));
            }
            Some(_) => {}
            None => return Err(format!("no body found for `{name}`")),
        }
    };
    let kind = if kind_kw == "struct" {
        Kind::Struct(parse_fields(body.stream())?)
    } else {
        Kind::Enum(parse_variants(body.stream())?)
    };
    Ok(Input { name, kind })
}

/// Parses `name: Type, ...` named fields, returning the names.
fn parse_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    } else {
                        break s;
                    }
                }
                Some(other) => return Err(format!("unexpected token in fields: {other}")),
                None => return Ok(fields),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
        if iter.peek().is_none() {
            return Ok(fields);
        }
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in variants: {other}")),
                None => return Ok(variants),
            }
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                iter.next();
                Some(parse_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is not supported"));
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        if iter.peek().is_none() {
            return Ok(variants);
        }
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", pairs.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string())"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))])",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .unwrap()
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(value, {f:?})?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("{:?} => Ok({name}::{})", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let fields = v.fields.as_ref()?;
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::get_field(inner, {f:?})?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{:?} => Ok({name}::{} {{ {} }})",
                        v.name,
                        v.name,
                        inits.join(", ")
                    ))
                })
                .collect();
            format!(
                "match value {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{ {unit} _ => Err(::serde::Error::custom(\"unknown variant\")) }},\n\
                   ::serde::Value::Map(pairs) => {{\n\
                     let (tag, inner) = pairs.first().ok_or_else(|| ::serde::Error::custom(\"empty enum map\"))?;\n\
                     let _ = inner;\n\
                     match tag.as_str() {{ {tagged} _ => Err(::serde::Error::custom(\"unknown variant\")) }}\n\
                   }},\n\
                   _ => Err(::serde::Error::custom(\"expected enum\")),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                tagged = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(", "))
                },
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
    )
    .parse()
    .unwrap()
}
