//! Integration tests pinning the paper's headline architecture results
//! through the facade API.

use ember::perf;

#[test]
fn headline_speedup_and_energy_claims() {
    let fig5 = perf::fig5_rows();
    let gm5 = fig5.last().expect("geomean");
    // "about 29x speedup" over the TPU.
    assert!(gm5.tpu > 15.0 && gm5.tpu < 60.0, "speedup {}", gm5.tpu);
    // "GS has 2x".
    let gs_speedup = gm5.tpu / gm5.gs;
    assert!(gs_speedup > 1.4 && gs_speedup < 3.0, "GS {gs_speedup}");

    let fig6 = perf::fig6_rows();
    let gm6 = fig6.last().expect("geomean");
    // "about 1000x reduction in energy".
    assert!(gm6.tpu > 300.0 && gm6.tpu < 4000.0, "energy {}", gm6.tpu);
}

#[test]
fn per_benchmark_monotonicity() {
    // Larger models widen BGF's advantage over the TPU (O(mn) digital ops
    // vs O(m+n) trajectory): MNIST (784x200) < EMNIST (784x1024).
    let rows = perf::fig5_rows();
    let get = |name: &str| rows.iter().find(|r| r.name == name).expect("row").tpu;
    assert!(get("EMNIST_RBM") > get("MNIST_RBM"));
    // Patch benchmarks (small m) sit below the geomean.
    let gm = rows.last().expect("geomean").tpu;
    assert!(get("SmallNorb_RBM") < gm);
}

#[test]
fn table2_scaling_laws() {
    let t = perf::ComponentTable::build(&perf::bgf_components(), &[400, 800, 1600]);
    for (name, cells) in &t.rows {
        let ratio_area = cells[2].0 / cells[0].0;
        if name.starts_with("CU") {
            assert!((ratio_area - 16.0).abs() < 1e-9, "{name} should scale N^2");
        } else {
            assert!((ratio_area - 4.0).abs() < 1e-9, "{name} should scale N");
        }
    }
}

#[test]
fn table3_bgf_dominates_on_efficiency() {
    let rows = perf::table3_rows();
    let bgf = rows.last().expect("bgf");
    assert!(bgf.tops_per_mm2 > rows[0].tops_per_mm2 * 50.0);
    assert!(bgf.tops_per_w > rows[2].tops_per_w * 50.0);
}

#[test]
fn breakdowns_are_self_consistent() {
    for b in perf::paper_benchmarks() {
        let t = perf::gs_time(&b);
        assert!((t.total() - (t.substrate_s + t.host_s + t.comm_s)).abs() < 1e-15);
        let e = perf::bgf_energy(&b);
        assert!(e.total() > 0.0);
        assert!(perf::tpu_energy(&b) > 0.0);
    }
}
