//! End-to-end integration tests: the full training paths (software CD,
//! GS accelerator, BGF hardware) on synthetic data, judged by exact
//! log-likelihood and downstream task metrics.

use ember::core::{BgfConfig, BoltzmannGradientFollower, GibbsSampler, GsConfig};
use ember::datasets::{digits, train_test_split};
use ember::rbm::{exact, CdTrainer, Mlp, MlpConfig, Rbm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 14x14 down-scaled two-mode toy set keeps exact evaluation cheap.
fn toy_data(rows: usize) -> ndarray::Array2<f64> {
    ndarray::Array2::from_shape_fn((rows, 12), |(i, j)| {
        let left = i % 2 == 0;
        if (left && j < 6) || (!left && j >= 6) {
            1.0
        } else {
            0.0
        }
    })
}

#[test]
fn all_three_trainers_improve_likelihood_comparably() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = toy_data(60);
    let init = Rbm::random(12, 4, 0.01, &mut rng);
    let before = exact::mean_log_likelihood(&init, &data);

    let mut cd = init.clone();
    CdTrainer::new(1, 0.1).train(&mut cd, &data, 10, 50, &mut rng);
    let ll_cd = exact::mean_log_likelihood(&cd, &data);

    let mut gs = GibbsSampler::new(init.clone(), GsConfig::default().with_k(1), &mut rng);
    for _ in 0..50 {
        gs.train_epoch(&data, 10, &mut rng);
    }
    let ll_gs = exact::mean_log_likelihood(gs.rbm(), &data);

    let mut bgf = BoltzmannGradientFollower::new(
        init,
        BgfConfig::default().with_pump_ratio(1.0 / 512.0),
        &mut rng,
    );
    for _ in 0..50 {
        bgf.train_epoch(&data, &mut rng);
    }
    let ll_bgf = exact::mean_log_likelihood(&bgf.effective_rbm(), &data);

    assert!(ll_cd > before + 2.0, "CD: {before} -> {ll_cd}");
    assert!(ll_gs > before + 2.0, "GS: {before} -> {ll_gs}");
    assert!(ll_bgf > before + 2.0, "BGF: {before} -> {ll_bgf}");
    // The three should land in the same neighborhood (paper: "essentially
    // the same accuracy").
    let spread = [ll_cd, ll_gs, ll_bgf];
    let min = spread.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = spread.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max - min < 4.0, "trainers diverge: {spread:?}");
}

#[test]
fn bgf_readout_supports_downstream_classification() {
    let mut rng = StdRng::seed_from_u64(2);
    let ds = digits::generate(300, 9).binarized(0.5);
    let split = train_test_split(&ds, 0.25, &mut rng);

    let init = Rbm::random(784, 32, 0.01, &mut rng);
    let mut bgf = BoltzmannGradientFollower::new(
        init,
        BgfConfig::default()
            .with_pump_ratio(1.0 / 256.0)
            .with_negative_sweeps(3),
        &mut rng,
    );
    for _ in 0..10 {
        bgf.train_epoch(split.train.images(), &mut rng);
    }
    // Read out through the ADCs, like the real flow.
    let rbm = bgf.read_out(&mut rng);

    let train_f = rbm.hidden_probs_batch(split.train.images());
    let test_f = rbm.hidden_probs_batch(split.test.images());
    let mut head = Mlp::new(32, &[], 10, 0.01, &mut rng);
    let config = MlpConfig {
        learning_rate: 0.3,
        momentum: 0.8,
        weight_decay: 1e-4,
    };
    for _ in 0..60 {
        head.train_epoch(&train_f, split.train.labels(), 25, &config, &mut rng);
    }
    let acc = head.accuracy(&test_f, split.test.labels());
    assert!(acc > 0.5, "accuracy {acc} barely above chance (0.1)");
}

#[test]
fn gs_and_software_cd_produce_similar_models() {
    // With ideal analog components the GS is algorithm-equivalent to CD-k
    // (different randomness, same distribution family).
    let mut rng = StdRng::seed_from_u64(3);
    let data = toy_data(40);
    let init = Rbm::random(12, 3, 0.01, &mut rng);

    let mut cd = init.clone();
    CdTrainer::new(2, 0.1).train(&mut cd, &data, 8, 40, &mut rng);
    let mut gs = GibbsSampler::new(init, GsConfig::default().with_k(2), &mut rng);
    for _ in 0..40 {
        gs.train_epoch(&data, 8, &mut rng);
    }

    let ll_cd = exact::mean_log_likelihood(&cd, &data);
    let ll_gs = exact::mean_log_likelihood(gs.rbm(), &data);
    assert!((ll_cd - ll_gs).abs() < 2.5, "CD {ll_cd} vs GS {ll_gs}");
}

#[test]
fn counters_enable_perf_accounting() {
    let mut rng = StdRng::seed_from_u64(4);
    let data = toy_data(20);
    let init = Rbm::random(12, 4, 0.01, &mut rng);
    let mut bgf = BoltzmannGradientFollower::new(init, BgfConfig::default(), &mut rng);
    bgf.train_epoch(&data, &mut rng);
    let c = bgf.counters();
    assert_eq!(c.positive_samples, 20);
    assert_eq!(c.negative_samples, 20);
    assert!(c.phase_points > 0);
    assert!(c.weight_update_events > 0);
    assert_eq!(c.host_mac_ops, 0, "BGF must not use the host for math");
}
