//! Cross-crate pipeline tests: datasets → models → metrics.

use ember::datasets::{cifar, digits, fraud, movielens, norb, train_test_split};
use ember::metrics::{Ais, RocCurve};
use ember::rbm::{binarize_patches, exact, extract_patches, CdTrainer, PatchPipeline, Rbm};
use ndarray::Axis;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ais_tracks_exact_likelihood_through_training() {
    let mut rng = StdRng::seed_from_u64(20);
    let data = ndarray::Array2::from_shape_fn((40, 10), |(i, _)| (i % 2) as f64);
    let mut rbm = Rbm::random(10, 5, 0.01, &mut rng);
    let trainer = CdTrainer::new(1, 0.1);
    let ais = Ais::new(300, 30);
    for _ in 0..3 {
        trainer.train(&mut rbm, &data, 10, 10, &mut rng);
        let exact_ll = exact::mean_log_likelihood(&rbm, &data);
        let ais_ll = ais.mean_log_probability(&rbm, &data, &mut rng);
        assert!(
            (exact_ll - ais_ll).abs() < 0.5,
            "AIS {ais_ll} vs exact {exact_ll}"
        );
    }
}

#[test]
fn conv_pipeline_classifies_cifar_like_above_chance() {
    let mut rng = StdRng::seed_from_u64(21);
    let ds = cifar::generate(200, 5);
    let split = train_test_split(&ds, 0.25, &mut rng);
    let patches = extract_patches(split.train.images(), 32, 32, 3, 6, 6);
    let patches = binarize_patches(&patches);
    assert_eq!(patches.ncols(), 108, "Table 1's 108-dim patches");

    let mut rbm = Rbm::random(108, 24, 0.01, &mut rng);
    CdTrainer::new(1, 0.1).train(&mut rbm, &patches, 64, 3, &mut rng);
    let pipe = PatchPipeline::new(rbm, 32, 32, 3, 6, 6);

    let train_f = pipe.features_batch(split.train.images());
    let test_f = pipe.features_batch(split.test.images());
    let mut head = ember::rbm::Mlp::new(pipe.feature_len(), &[], 10, 0.01, &mut rng);
    let cfg = ember::rbm::MlpConfig::default();
    for _ in 0..80 {
        head.train_epoch(&train_f, split.train.labels(), 25, &cfg, &mut rng);
    }
    let acc = head.accuracy(&test_f, split.test.labels());
    assert!(acc > 0.3, "accuracy {acc} vs chance 0.1");
}

#[test]
fn norb_patches_have_table1_dimensions() {
    let ds = norb::generate(20, 2);
    let patches = extract_patches(ds.images(), 32, 32, 1, 6, 6);
    assert_eq!(patches.ncols(), 36, "Table 1's 36-dim patches");
}

#[test]
fn fraud_free_energy_scoring_detects_anomalies() {
    let mut rng = StdRng::seed_from_u64(22);
    let ds = fraud::generate(4000, 0.03, 3);
    let mut rbm = Rbm::random(28, 10, 0.01, &mut rng);
    CdTrainer::new(10, 0.05).train(&mut rbm, &ds.normal_binary(), 32, 40, &mut rng);
    let scores: Vec<f64> = ds
        .binary()
        .axis_iter(Axis(0))
        .map(|row| rbm.free_energy(&row))
        .collect();
    let auc = RocCurve::new(&scores, ds.labels()).auc();
    assert!(auc > 0.8, "AUC {auc}");
}

#[test]
fn movielens_rbm_beats_global_mean_baseline() {
    let mut rng = StdRng::seed_from_u64(23);
    let ml = movielens::generate(15_000, 0.1, 4);
    let matrix = ml.item_user_matrix(4);
    let mut rbm = Rbm::random(ml.users(), 30, 0.01, &mut rng);
    CdTrainer::new(5, 0.05).train(&mut rbm, &matrix, 50, 3, &mut rng);

    let mae_rbm = ember_bench::movielens_mae(&rbm, &ml, &matrix);
    let mean_stars =
        ml.train().iter().map(|r| r.stars as f64).sum::<f64>() / ml.train().len() as f64;
    let naive: Vec<f64> = vec![mean_stars; ml.test().len()];
    let target: Vec<f64> = ml.test().iter().map(|r| r.stars as f64).collect();
    let mae_naive = ember::metrics::mean_absolute_error(&naive, &target);
    assert!(
        mae_rbm < mae_naive + 0.05,
        "RBM MAE {mae_rbm} vs naive {mae_naive}"
    );
}

#[test]
fn digit_features_separate_classes_linearly() {
    let mut rng = StdRng::seed_from_u64(24);
    let ds = digits::generate(400, 6).binarized(0.5);
    let split = train_test_split(&ds, 0.25, &mut rng);
    let mut rbm = Rbm::random(784, 48, 0.01, &mut rng);
    CdTrainer::new(1, 0.1).train(&mut rbm, split.train.images(), 20, 6, &mut rng);

    let train_f = rbm.hidden_probs_batch(split.train.images());
    let test_f = rbm.hidden_probs_batch(split.test.images());
    let mut head = ember::rbm::Mlp::new(48, &[], 10, 0.01, &mut rng);
    let cfg = ember::rbm::MlpConfig {
        learning_rate: 0.3,
        momentum: 0.8,
        weight_decay: 1e-4,
    };
    for _ in 0..80 {
        head.train_epoch(&train_f, split.train.labels(), 32, &cfg, &mut rng);
    }
    let acc = head.accuracy(&test_f, split.test.labels());
    assert!(acc > 0.6, "digit accuracy {acc}");
}
