//! Substrate-level integration tests: the BRIM simulator as an Ising
//! optimizer and as the RBM sampling engine.

use ember::brim::{BipartiteBrim, BrimConfig, BrimMachine, FlipSchedule};
use ember::ising::{generate, AnnealSchedule, Annealer, Qubo};
use ember::rbm::Rbm;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn brim_and_annealer_agree_on_maxcut() {
    let mut rng = StdRng::seed_from_u64(10);
    let mc = generate::random_maxcut(14, 0.5, &mut rng);
    let problem = mc.to_ising();
    let (_, ground) = problem.brute_force_ground_state();
    let optimal_cut = mc.cut_from_energy(ground);

    // Best of 4 BRIM anneals.
    let mut best = f64::INFINITY;
    for _ in 0..4 {
        let mut brim = BrimMachine::new(problem.clone(), BrimConfig::default());
        brim.randomize(&mut rng);
        best = best.min(
            brim.anneal(&FlipSchedule::geometric(0.08, 1e-4, 1500), &mut rng)
                .energy,
        );
    }
    let brim_cut = mc.cut_from_energy(best);

    let annealer = Annealer::new(AnnealSchedule::geometric(3.0, 0.02, 400));
    let sa_cut = mc.cut_from_energy(annealer.solve(&problem, &mut rng).energy);

    assert!(
        brim_cut >= optimal_cut - 1.0,
        "BRIM {brim_cut} vs optimal {optimal_cut}"
    );
    assert!(
        sa_cut >= optimal_cut - 1.0,
        "SA {sa_cut} vs optimal {optimal_cut}"
    );
}

#[test]
fn qubo_path_through_substrate() {
    // Route a QUBO through the Ising mapping and solve it on the BRIM.
    let mut rng = StdRng::seed_from_u64(11);
    // Minimize (b0 + b1 - 1)^2 + (b2 - 1)^2 expanded into QUBO form:
    // b0 + b1 + 2 b0 b1 - 2 b0 - 2 b1 ... use a simple penalty matrix.
    let q = ndarray::arr2(&[[-1.0, 2.0, 0.0], [2.0, -1.0, 0.0], [0.0, 0.0, -1.0]]);
    let qubo = Qubo::new(q, 0.0).unwrap();
    let ising = qubo.to_ising();
    let mut brim = BrimMachine::new(ising, BrimConfig::default());
    brim.randomize(&mut rng);
    let sol = brim.anneal(&FlipSchedule::geometric(0.05, 1e-4, 1200), &mut rng);
    let bits = sol.state.to_bits();
    // Optimum: exactly one of b0/b1 set, b2 set -> value -2.
    assert!((qubo.value(&bits) - (-2.0)).abs() < 1e-9, "bits {bits:?}");
}

#[test]
fn bipartite_brim_performs_rbm_inference() {
    // Program a trained-looking RBM and check clamped inference matches
    // the conditional probabilities' hard decisions.
    let mut rng = StdRng::seed_from_u64(12);
    let rbm = Rbm::random(6, 3, 2.0, &mut rng);
    let mut brim = BipartiteBrim::new(rbm.to_bipartite(), BrimConfig::default());

    let v = [1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
    brim.clamp_visible(&v);
    brim.settle(600);
    let hardware = brim.read_hidden_bits();

    let va = ndarray::arr1(&v);
    let probs = rbm.hidden_probs(&va.view());
    for (j, (&bit, &p)) in hardware.iter().zip(probs.iter()).enumerate() {
        // Deterministic settle should match confident conditionals.
        if p > 0.9 {
            assert!(bit, "unit {j}: p={p} but substrate read 0");
        }
        if p < 0.1 {
            assert!(!bit, "unit {j}: p={p} but substrate read 1");
        }
    }
}

#[test]
fn phase_point_accounting_scales_with_work() {
    let mut rng = StdRng::seed_from_u64(13);
    let p = generate::ferromagnetic_ring(8, 1.0);
    let mut m = BrimMachine::new(p, BrimConfig::default());
    let s1 = m.anneal(&FlipSchedule::quench(100), &mut rng);
    assert_eq!(s1.phase_points, 100);
    assert_eq!(m.phase_points(), 100);
    let s2 = m.anneal(&FlipSchedule::constant(0.01, 50), &mut rng);
    assert_eq!(s2.phase_points, 50);
    assert_eq!(m.phase_points(), 150);
}
